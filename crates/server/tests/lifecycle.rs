//! The remote database lifecycle, exercised at the registry level and
//! over real TCP:
//!
//! * **Eviction policy** — LRU demotion order under a memory budget,
//!   pinned tenants exempt, `QuotaExceeded` for a database bigger than
//!   the whole budget, and byte-exact accounting that returns to zero
//!   across register/evict cycles (no leaks).
//! * **Authorization** — wrong channel keys, replayed nonces, and
//!   evict-by-non-owner are all rejected with `Unauthorized` and leave
//!   the registry untouched.
//! * **Upload abuse over the wire** — out-of-order, duplicate, and
//!   overrunning chunks, plus commits without (or with incomplete)
//!   uploads, all surface as typed `UploadIncomplete` errors on a
//!   connection that stays usable.
//! * **The half-written-chunk regression** — a server hanging up
//!   mid-upload surfaces as the typed `ConnectionClosed`, not a raw io
//!   error.

use std::net::{TcpListener, TcpStream};

use cm_core::{Backend, BitString, MatchError, MatcherConfig};
use cm_server::wire::{auth_tag, content_digest, read_frame, upload_tag, write_frame, OP_EVICT};
use cm_server::{
    EvictAuth, MatchClient, MatchServer, QueryPayload, Request, Response, TenantAccess,
    TenantRegistry, TenantSpec, UploadAuth, UploadPhase,
};
use cm_ssd::SecureIndexChannel;

const KEY_A: [u8; 32] = [0xA1; 32];
const KEY_B: [u8; 32] = [0xB2; 32];
const KEY_C: [u8; 32] = [0xC3; 32];
const KEY_EVE: [u8; 32] = [0xEE; 32];

/// A plain-backend remote tenant payload of exactly `bytes` database
/// bytes (serialized charge = 8 + bytes).
fn plain_payload(bytes: usize, fill: u8) -> (TenantSpec, Vec<u8>, BitString) {
    let data = BitString::from_bytes(&vec![fill; bytes]);
    let config = MatcherConfig::new(Backend::Plain);
    let mut owner = config.build().unwrap();
    owner.load_database(&data).unwrap();
    let encoded = owner.export_database().unwrap();
    assert_eq!(encoded.len(), 8 + bytes);
    (TenantSpec::from_config(&config, 1), encoded, data)
}

/// A fully valid upload authorization for `payload` (what
/// `MatchClient::upload_database` computes client-side).
fn remote_auth(
    key: &[u8; 32],
    tenant: &str,
    spec: &TenantSpec,
    payload: &[u8],
    nonce: u64,
) -> UploadAuth {
    let content = content_digest(key, payload);
    UploadAuth {
        nonce,
        channel_key: *key,
        content,
        tag: upload_tag(key, tenant, nonce, payload.len() as u64, spec, &content),
    }
}

fn evict_auth(key: &[u8; 32], tenant: &str, nonce: u64) -> EvictAuth {
    EvictAuth {
        nonce,
        tag: auth_tag(key, OP_EVICT, tenant, 0, nonce, &[]),
    }
}

// ---------------------------------------------------------------------------
// Eviction policy
// ---------------------------------------------------------------------------

#[test]
fn lru_order_is_respected_and_cold_tenants_rematerialize() {
    let registry = TenantRegistry::new();
    let (spec, encoded, _) = plain_payload(100, 1);
    let charge = encoded.len() as u64; // 108
    registry.set_memory_budget(Some(charge * 2 + 10)); // fits two, not three

    registry
        .register_remote(
            "a",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_A, "a", &spec, &encoded, 1),
        )
        .unwrap();
    registry
        .register_remote(
            "b",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_B, "b", &spec, &encoded, 1),
        )
        .unwrap();
    assert_eq!(registry.hot_bytes(), charge * 2);

    // Touch `a`: `b` becomes the least recently used.
    registry.get("a").unwrap();

    let load = registry
        .register_remote(
            "c",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_C, "c", &spec, &encoded, 1),
        )
        .unwrap();
    assert_eq!(load.bytes, charge);
    assert_eq!(load.demoted, vec!["b".to_string()], "LRU victim is b");
    assert!(registry.is_resident("a").unwrap());
    assert!(!registry.is_resident("b").unwrap());
    assert!(registry.is_resident("c").unwrap());
    assert_eq!(registry.hot_bytes(), charge * 2);
    // All three stay *registered* — more tenants than fit in memory.
    assert_eq!(registry.len(), 3);

    // Querying the cold tenant re-materializes it, demoting the new LRU
    // (`a`: touched before `c` was admitted).
    let tenant_b = registry.get("b").unwrap();
    assert_eq!(tenant_b.id(), "b");
    assert!(registry.is_resident("b").unwrap());
    assert!(!registry.is_resident("a").unwrap());
    assert_eq!(registry.hot_bytes(), charge * 2);
}

#[test]
fn pinned_tenants_are_never_evicted() {
    let registry = TenantRegistry::new();
    let (spec, encoded, _) = plain_payload(100, 2);
    let charge = encoded.len() as u64;
    registry.set_memory_budget(Some(charge * 2 + 10));

    registry
        .register_remote(
            "pinned",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_A, "pinned", &spec, &encoded, 1),
        )
        .unwrap();
    // Pinning is operator-only (never accepted from the wire): the
    // operator pins the tenant server-side after admission.
    registry.set_pinned("pinned", true).unwrap();
    registry
        .register_remote(
            "victim",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_B, "victim", &spec, &encoded, 1),
        )
        .unwrap();

    // `pinned` is older than `victim`, but only `victim` may be demoted.
    let load = registry
        .register_remote(
            "newcomer",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_C, "newcomer", &spec, &encoded, 1),
        )
        .unwrap();
    assert_eq!(load.demoted, vec!["victim".to_string()]);
    assert!(registry.is_resident("pinned").unwrap());

    // With only pinned/hot tenants left, a further admission fails typed
    // — and the failed admission is not registered.
    registry.set_pinned("newcomer", true).unwrap();
    let err = registry
        .register_remote(
            "overflow",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_EVE, "overflow", &spec, &encoded, 1),
        )
        .unwrap_err();
    assert!(
        matches!(err, MatchError::QuotaExceeded { required, .. } if required == charge),
        "{err:?}"
    );
    assert_eq!(registry.len(), 3);
    assert!(matches!(
        registry.info("overflow"),
        Err(MatchError::UnknownTenant(_))
    ));
    assert_eq!(registry.hot_bytes(), charge * 2);
}

#[test]
fn a_single_database_over_the_budget_is_quota_exceeded() {
    let registry = TenantRegistry::new();
    registry.set_memory_budget(Some(64));
    let (spec, encoded, _) = plain_payload(100, 3); // charge 108 > 64
    let required = encoded.len() as u64;
    assert_eq!(
        registry.register_remote(
            "big",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_A, "big", &spec, &encoded, 1)
        ),
        Err(MatchError::QuotaExceeded {
            budget: 64,
            required
        })
    );
    assert!(registry.is_empty());
    assert_eq!(registry.hot_bytes(), 0);

    // In-process registration is bounded by the same budget.
    let mut registry = TenantRegistry::new();
    registry.set_memory_budget(Some(4));
    let matcher = MatcherConfig::new(Backend::Plain).build().unwrap();
    let data = BitString::from_bytes(&[0xFF; 100]);
    assert!(matches!(
        registry.register("big", matcher, &KEY_A, &data),
        Err(MatchError::QuotaExceeded { .. })
    ));
    assert_eq!(registry.hot_bytes(), 0);
}

#[test]
fn accounting_returns_to_zero_across_register_evict_cycles() {
    let registry = TenantRegistry::new();
    registry.set_memory_budget(Some(4096));
    let (spec, encoded, _) = plain_payload(200, 4);
    let charge = encoded.len() as u64;

    for cycle in 0u64..3 {
        let load = registry
            .register_remote(
                "cycler",
                &spec,
                encoded.clone(),
                &remote_auth(&KEY_A, "cycler", &spec, &encoded, 2 * cycle + 1),
            )
            .unwrap();
        assert_eq!(load.bytes, charge);
        assert_eq!(registry.hot_bytes(), charge, "cycle {cycle}");
        assert_eq!(registry.info("cycler").unwrap().bytes, charge);
        let freed = registry
            .evict("cycler", &evict_auth(&KEY_A, "cycler", 2 * cycle + 2))
            .unwrap();
        assert_eq!(freed, charge, "cycle {cycle}");
        assert_eq!(registry.hot_bytes(), 0, "no byte leak in cycle {cycle}");
        assert_eq!(registry.len(), 0);
    }

    // Evicting a *cold* tenant frees no hot bytes but removes the entry.
    registry
        .register_remote(
            "hotone",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_A, "hotone", &spec, &encoded, 1),
        )
        .unwrap();
    registry.set_memory_budget(Some(charge)); // exactly one fits
    registry
        .register_remote(
            "hottwo",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_B, "hottwo", &spec, &encoded, 1),
        )
        .unwrap();
    assert!(!registry.is_resident("hotone").unwrap());
    let freed = registry
        .evict("hotone", &evict_auth(&KEY_A, "hotone", 9))
        .unwrap();
    assert_eq!(freed, 0, "cold evictions release no hot bytes");
    assert_eq!(registry.hot_bytes(), charge);
}

/// A re-materialized CIPHERMATCH tenant answers byte-identically to its
/// pre-demotion self, and its lifetime statistics survive the round trip
/// through the cold tier.
#[test]
fn rematerialized_tenants_answer_identically_and_keep_their_stats() {
    let registry = TenantRegistry::new();
    let data = BitString::from_ascii("the cold tier keeps the sealed answer stable");
    let config = MatcherConfig::new(Backend::Ciphermatch)
        .insecure_test()
        .seed(4242);
    let mut owner = config.build().unwrap();
    owner.load_database(&data).unwrap();
    let encoded = owner.export_database().unwrap();
    let spec = TenantSpec::from_config(&config, 2);
    let charge = encoded.len() as u64;
    registry.set_memory_budget(Some(charge + 300));

    registry
        .register_remote(
            "cm",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_A, "cm", &spec, &encoded, 1),
        )
        .unwrap();
    let pattern = BitString::from_ascii("sealed");
    let truth = data.find_all(&pattern);
    let open = |reply: &cm_server::MatchedReply| {
        SecureIndexChannel::new(&KEY_A).open(&reply.sealed_indices, reply.nonce)
    };

    let hot = registry.get("cm").unwrap();
    let before = hot.run(&QueryPayload::Bits(pattern.clone())).unwrap();
    assert_eq!(open(&before), truth);
    assert!(before.stats.hom_adds > 0);

    // Push `cm` out with a plain tenant too big to share the budget.
    let (pspec, pencoded, _) = plain_payload(400, 5);
    let load = registry
        .register_remote(
            "pusher",
            &pspec,
            pencoded.clone(),
            &remote_auth(&KEY_B, "pusher", &pspec, &pencoded, 1),
        )
        .unwrap();
    assert_eq!(load.demoted, vec!["cm".to_string()]);
    assert!(!registry.is_resident("cm").unwrap());
    // The stats survive demotion and are readable without warming it up.
    assert_eq!(registry.totals_of("cm").unwrap().1, 1);
    assert!(!registry.is_resident("cm").unwrap());

    // Re-materialization: same indices, fresh nonce (never a reused
    // keystream), and the query count keeps accumulating.
    let warm = registry.get("cm").unwrap();
    assert!(registry.is_resident("cm").unwrap());
    let after = warm.run(&QueryPayload::Bits(pattern)).unwrap();
    assert_eq!(open(&after), truth);
    assert_ne!(after.nonce, before.nonce);
    assert_eq!(warm.totals().1, 2);
}

// ---------------------------------------------------------------------------
// The flash-backed cold tier
// ---------------------------------------------------------------------------

/// An in-flash (`ifp`) remote tenant payload: deterministic keys from the
/// spec seed, exported through the device's honest flash read-back path.
fn ifp_payload(seed: u64, text: &str) -> (TenantSpec, Vec<u8>, BitString) {
    let data = BitString::from_ascii(text);
    let mut owner = cm_core::erase(cm_server::IfpMatcher::for_spec(seed, true).unwrap(), seed);
    owner.load_database(&data).unwrap();
    let encoded = owner.export_database().unwrap();
    let spec = TenantSpec {
        backend: "ifp".into(),
        seed,
        window: 0,
        threads: 1,
        insecure: true,
        workers: 1,
    };
    (spec, encoded, data)
}

/// The tentpole invariant: demotion makes the simulated flash the master
/// copy. The host-RAM `encoded` bytes are *gone* (not merely unaccounted),
/// the cold store holds the bytes as pages, the write's wear and movement
/// land in the victim's own stats, and promotion reads it all back.
#[test]
fn cold_demotion_moves_the_master_copy_into_flash() {
    let registry = TenantRegistry::new();
    let (spec, encoded, _) = plain_payload(3000, 0x11);
    let charge = encoded.len() as u64;
    registry.set_memory_budget(Some(charge)); // exactly one fits

    registry
        .register_remote(
            "first",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_A, "first", &spec, &encoded, 1),
        )
        .unwrap();
    assert_eq!(registry.host_copy_bytes("first").unwrap(), charge);
    assert_eq!(registry.cold_bytes(), 0);
    assert_eq!(registry.cold_store_wear(), 0);

    let load = registry
        .register_remote(
            "second",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_B, "second", &spec, &encoded, 1),
        )
        .unwrap();
    assert_eq!(load.demoted, vec!["first".to_string()]);

    // Hot accounting excludes the demoted bytes AND the host copy is
    // gone: the only copy is pages in the cold store's simulated SSD.
    assert_eq!(registry.hot_bytes(), charge);
    assert_eq!(registry.cold_bytes(), charge);
    assert_eq!(registry.host_copy_bytes("first").unwrap(), 0);
    let pages = charge.div_ceil(1024); // default cold-store page size
    assert_eq!(
        registry.cold_store_wear(),
        pages,
        "one program per page written, nothing else"
    );
    let (stats, _) = registry.totals_of("first").unwrap();
    assert_eq!(stats.flash_wear, pages, "the victim pays the write wear");
    assert_eq!(stats.bytes_moved, charge, "the victim pays the movement");

    // Promotion reads the master copy back: flash reads are wear-free,
    // the same bytes move again, and the accounting swaps tiers.
    let wear_before = registry.cold_store_wear();
    registry.get("first").unwrap();
    assert!(registry.is_resident("first").unwrap());
    assert_eq!(registry.host_copy_bytes("first").unwrap(), charge);
    let (stats, _) = registry.totals_of("first").unwrap();
    assert_eq!(stats.bytes_moved, charge * 2, "write down + read back");
    // The promotion demoted "second" to make room (budget fits one), so
    // total wear grew only by second's demotion write — the read-back
    // itself added none.
    assert_eq!(registry.cold_store_wear(), wear_before + pages);
    assert_eq!(registry.cold_bytes(), charge, "second took first's place");
}

/// Satellite: the wear ledger reconciles across a full
/// demote → cold-serve → rebuild cycle — the demotion write is charged
/// exactly once (to the victim), cold serving and promotion add zero
/// wear, and the registry's ledger equals the device's.
#[test]
fn cold_wear_ledger_reconciles_across_demote_serve_rebuild() {
    let registry = TenantRegistry::new();
    let (spec, encoded, data) = ifp_payload(77, "the wear ledger must reconcile end to end");
    let charge = encoded.len() as u64;
    registry.set_memory_budget(Some(charge)); // exactly the ifp tenant

    registry
        .register_remote(
            "ifpt",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_A, "ifpt", &spec, &encoded, 1),
        )
        .unwrap();
    let pattern = BitString::from_ascii("ledger");
    let truth = data.find_all(&pattern);
    let open = |reply: &cm_server::MatchedReply| {
        SecureIndexChannel::new(&KEY_A).open(&reply.sealed_indices, reply.nonce)
    };

    // Hot in-flash queries are latch-only: zero wear anywhere.
    let hot_reply = registry
        .run_query("ifpt", &QueryPayload::Bits(pattern.clone()))
        .unwrap();
    assert_eq!(open(&hot_reply), truth);
    assert_eq!(registry.cold_store_wear(), 0);
    assert_eq!(registry.totals_of("ifpt").unwrap().0.flash_wear, 0);

    // Demote: exactly one program per page, charged once, to the victim.
    // The pusher's serialized charge (8 + payload) matches the ifp
    // tenant's exactly, so the one-tenant budget swaps them cleanly.
    let (pspec, pencoded, _) = plain_payload(encoded.len() - 8, 0x22);
    registry
        .register_remote(
            "pusher",
            &pspec,
            pencoded.clone(),
            &remote_auth(&KEY_B, "pusher", &pspec, &pencoded, 1),
        )
        .unwrap();
    assert!(!registry.is_resident("ifpt").unwrap());
    let pages = charge.div_ceil(1024);
    let wear_after_demote = registry.cold_store_wear();
    assert_eq!(wear_after_demote, pages);
    let charged = registry.totals_of("ifpt").unwrap().0.flash_wear;
    assert_eq!(
        charged, wear_after_demote,
        "tenant ledger == device ledger: no double- or zero-charging"
    );

    // Cold serve: the parked device answers correctly with no
    // re-materialization and no additional wear on either ledger.
    let cold_reply = registry
        .run_query("ifpt", &QueryPayload::Bits(pattern.clone()))
        .unwrap();
    assert_eq!(open(&cold_reply), truth);
    assert!(!registry.is_resident("ifpt").unwrap(), "no promotion");
    assert_eq!(registry.host_copy_bytes("ifpt").unwrap(), 0);
    assert_eq!(registry.cold_store_wear(), wear_after_demote);
    assert_eq!(registry.totals_of("ifpt").unwrap().0.flash_wear, charged);
    assert_ne!(cold_reply.nonce, hot_reply.nonce, "nonces stay monotone");

    // Rebuild: the read-back is wear-free; only the pusher's own
    // demotion write (same byte count, same page count) adds wear — and
    // it lands on the pusher, not on the promoted tenant.
    registry.get("ifpt").unwrap();
    assert!(registry.is_resident("ifpt").unwrap());
    let pusher_pages = (pencoded.len() as u64).div_ceil(1024);
    assert_eq!(registry.cold_store_wear(), wear_after_demote + pusher_pages);
    assert_eq!(
        registry.totals_of("ifpt").unwrap().0.flash_wear,
        charged,
        "promotion reads are wear-free"
    );
    assert_eq!(
        registry.totals_of("pusher").unwrap().0.flash_wear,
        pusher_pages
    );
    // And the promoted tenant still answers identically.
    let warm_reply = registry
        .run_query("ifpt", &QueryPayload::Bits(pattern))
        .unwrap();
    assert_eq!(open(&warm_reply), truth);
}

/// Satellite: `DatabaseInfo` and stats reads are pure reads — neither
/// may re-materialize a cold tenant (warming a pool to answer "is it
/// warm?" would thrash the budget).
#[test]
fn cold_info_and_stats_reads_never_rematerialize() {
    let registry = TenantRegistry::new();
    let (spec, encoded, _) = plain_payload(500, 0x33);
    let charge = encoded.len() as u64;
    registry.set_memory_budget(Some(charge));

    registry
        .register_remote(
            "colder",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_A, "colder", &spec, &encoded, 1),
        )
        .unwrap();
    registry
        .register_remote(
            "warmer",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_B, "warmer", &spec, &encoded, 1),
        )
        .unwrap();
    assert!(!registry.is_resident("colder").unwrap());

    let info = registry.info("colder").unwrap();
    assert!(!info.resident);
    assert_eq!(info.tier, "flash", "a demoted database lives in flash");
    let _ = registry.totals_of("colder").unwrap();
    assert!(
        !registry.is_resident("colder").unwrap(),
        "info/stats reads must not warm the tenant"
    );
    assert_eq!(
        registry.host_copy_bytes("colder").unwrap(),
        0,
        "reads must not pull the bytes back into host RAM either"
    );
    assert_eq!(registry.cold_bytes(), charge);

    // The hot non-ifp tenant reports the dram tier.
    assert_eq!(registry.info("warmer").unwrap().tier, "dram");
}

// ---------------------------------------------------------------------------
// Authorization
// ---------------------------------------------------------------------------

#[test]
fn wrong_channel_keys_are_unauthorized_and_leave_state_untouched() {
    let registry = TenantRegistry::new();
    let (spec, encoded, _) = plain_payload(64, 6);
    registry
        .register_remote(
            "alice",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_A, "alice", &spec, &encoded, 1),
        )
        .unwrap();
    let bytes_before = registry.hot_bytes();

    // Upload authorization with the wrong key: rejected before any state
    // changes, whether at the Begin check or the commit-time re-check.
    let eve = remote_auth(&KEY_EVE, "alice", &spec, &encoded, 50);
    assert!(matches!(
        registry.authorize_upload("alice", &eve, encoded.len() as u64, &spec),
        Err(MatchError::Unauthorized(_))
    ));
    assert!(matches!(
        registry.register_remote("alice", &spec, encoded.clone(), &eve),
        Err(MatchError::Unauthorized(_))
    ));

    // A correct key with a *spliced* tag (signed for another declared
    // size) fails.
    let mut spliced = remote_auth(&KEY_A, "alice", &spec, &encoded, 51);
    spliced.tag = upload_tag(&KEY_A, "alice", 51, 9999, &spec, &spliced.content);
    assert!(matches!(
        registry.authorize_upload("alice", &spliced, encoded.len() as u64, &spec),
        Err(MatchError::Unauthorized(_))
    ));

    // A valid tag whose payload was substituted mid-upload fails the
    // commit-time content-digest check.
    let mut swapped = remote_auth(&KEY_A, "alice", &spec, &encoded, 52);
    swapped.content = content_digest(&KEY_A, b"attacker bytes of equal length..");
    swapped.tag = upload_tag(
        &KEY_A,
        "alice",
        52,
        encoded.len() as u64,
        &spec,
        &swapped.content,
    );
    assert!(matches!(
        registry.register_remote("alice", &spec, encoded.clone(), &swapped),
        Err(MatchError::Unauthorized(_))
    ));

    assert_eq!(registry.hot_bytes(), bytes_before);
    assert_eq!(registry.len(), 1);
    assert!(registry.is_resident("alice").unwrap());
}

#[test]
fn replayed_upload_nonces_are_unauthorized() {
    let registry = TenantRegistry::new();
    let (spec, encoded, _) = plain_payload(32, 8);
    let auth = |nonce| remote_auth(&KEY_A, "alice", &spec, &encoded, nonce);

    // A Begin alone consumes nothing and binds nothing: the nonce is
    // burned only when the upload commits.
    registry
        .authorize_upload("alice", &auth(5), encoded.len() as u64, &spec)
        .unwrap();
    registry
        .authorize_upload("alice", &auth(5), encoded.len() as u64, &spec)
        .unwrap();
    registry
        .register_remote("alice", &spec, encoded.clone(), &auth(5))
        .unwrap();

    // After the commit, exact replays and stale nonces die at both the
    // Begin gate and the commit boundary; the next fresh nonce works.
    assert_eq!(
        registry.authorize_upload("alice", &auth(5), encoded.len() as u64, &spec),
        Err(MatchError::Unauthorized("replayed upload nonce"))
    );
    assert_eq!(
        registry
            .register_remote("alice", &spec, encoded.clone(), &auth(5))
            .unwrap_err(),
        MatchError::Unauthorized("replayed upload nonce")
    );
    assert_eq!(
        registry.authorize_upload("alice", &auth(4), encoded.len() as u64, &spec),
        Err(MatchError::Unauthorized("replayed upload nonce"))
    );
    registry
        .register_remote("alice", &spec, encoded.clone(), &auth(6))
        .unwrap();
}

#[test]
fn evict_by_non_owner_is_unauthorized_and_bindings_survive_eviction() {
    let registry = TenantRegistry::new();
    let (spec, encoded, _) = plain_payload(64, 7);
    registry
        .register_remote(
            "alice",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_A, "alice", &spec, &encoded, 1),
        )
        .unwrap();
    let bytes_before = registry.hot_bytes();

    // A forged tag (no key), a tag under the wrong key, and a replayed
    // nonce are all rejected; the tenant keeps serving.
    assert!(matches!(
        registry.evict(
            "alice",
            &EvictAuth {
                nonce: 1,
                tag: [0; 16]
            }
        ),
        Err(MatchError::Unauthorized(_))
    ));
    assert!(matches!(
        registry.evict("alice", &evict_auth(&KEY_EVE, "alice", 1)),
        Err(MatchError::Unauthorized(_))
    ));
    assert_eq!(registry.hot_bytes(), bytes_before);
    assert!(registry.is_resident("alice").unwrap());

    // The owner evicts; the id's key binding survives, so a hijacker
    // cannot re-register the vacated id under their own key...
    registry
        .evict("alice", &evict_auth(&KEY_A, "alice", 2))
        .unwrap();
    assert!(matches!(
        registry.register_remote(
            "alice",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_EVE, "alice", &spec, &encoded, 3)
        ),
        Err(MatchError::Unauthorized(_))
    ));
    assert!(registry.is_empty());

    // ...and an old (pre-eviction) nonce stays dead for the owner too.
    assert_eq!(
        registry
            .register_remote(
                "alice",
                &spec,
                encoded.clone(),
                &remote_auth(&KEY_A, "alice", &spec, &encoded, 1)
            )
            .unwrap_err(),
        MatchError::Unauthorized("replayed upload nonce")
    );
    registry
        .register_remote(
            "alice",
            &spec,
            encoded.clone(),
            &remote_auth(&KEY_A, "alice", &spec, &encoded, 3),
        )
        .unwrap();
}

// ---------------------------------------------------------------------------
// Upload abuse over real TCP
// ---------------------------------------------------------------------------

fn raw_roundtrip(stream: &mut TcpStream, request: &Request) -> Response {
    write_frame(stream, &request.encode()).unwrap();
    let payload = read_frame(stream).unwrap().expect("server must answer");
    Response::decode(&payload).unwrap()
}

fn begin(tenant: &str, key: &[u8; 32], total: u64, chunks: u32, nonce: u64) -> Request {
    let (spec, _, _) = plain_payload(1, 0);
    // The content digest is arbitrary (these uploads never commit); the
    // tag must still be self-consistent to pass the Begin gate.
    let content = content_digest(key, b"never committed");
    let tag = upload_tag(key, tenant, nonce, total, &spec, &content);
    Request::LoadDatabase {
        tenant: tenant.to_string(),
        phase: UploadPhase::Begin {
            auth: UploadAuth {
                nonce,
                channel_key: *key,
                content,
                tag,
            },
            spec,
            total_bytes: total,
            chunk_count: chunks,
        },
    }
}

fn chunk(tenant: &str, index: u32, data: Vec<u8>) -> Request {
    Request::LoadDatabase {
        tenant: tenant.to_string(),
        phase: UploadPhase::Chunk { index, data },
    }
}

fn commit(tenant: &str) -> Request {
    Request::LoadDatabase {
        tenant: tenant.to_string(),
        phase: UploadPhase::Commit,
    }
}

#[test]
fn chunk_abuse_over_tcp_is_typed_and_never_registers() {
    let server = MatchServer::new(TenantRegistry::new())
        .spawn("127.0.0.1:0")
        .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    // A chunk with no upload in progress.
    assert!(matches!(
        raw_roundtrip(&mut stream, &chunk("t", 0, vec![1])),
        Response::Error(MatchError::UploadIncomplete(_))
    ));
    // A commit with no upload in progress.
    assert!(matches!(
        raw_roundtrip(&mut stream, &commit("t")),
        Response::Error(MatchError::UploadIncomplete(_))
    ));

    // Out-of-order first chunk.
    assert!(matches!(
        raw_roundtrip(&mut stream, &begin("t", &KEY_A, 16, 2, 1)),
        Response::UploadProgress { .. }
    ));
    assert!(matches!(
        raw_roundtrip(&mut stream, &chunk("t", 1, vec![0; 8])),
        Response::Error(MatchError::UploadIncomplete(_))
    ));

    // Duplicate chunk index (the session above was aborted; start over).
    assert!(matches!(
        raw_roundtrip(&mut stream, &begin("t", &KEY_A, 16, 2, 2)),
        Response::UploadProgress { .. }
    ));
    assert!(matches!(
        raw_roundtrip(&mut stream, &chunk("t", 0, vec![0; 8])),
        Response::UploadProgress { .. }
    ));
    assert!(matches!(
        raw_roundtrip(&mut stream, &chunk("t", 0, vec![0; 8])),
        Response::Error(MatchError::UploadIncomplete(_))
    ));

    // Chunk data overrunning the declared total.
    assert!(matches!(
        raw_roundtrip(&mut stream, &begin("t", &KEY_A, 16, 2, 3)),
        Response::UploadProgress { .. }
    ));
    assert!(matches!(
        raw_roundtrip(&mut stream, &chunk("t", 0, vec![0; 64])),
        Response::Error(MatchError::UploadIncomplete(_))
    ));

    // Commit with a missing chunk.
    assert!(matches!(
        raw_roundtrip(&mut stream, &begin("t", &KEY_A, 16, 2, 4)),
        Response::UploadProgress { .. }
    ));
    assert!(matches!(
        raw_roundtrip(&mut stream, &chunk("t", 0, vec![0; 8])),
        Response::UploadProgress { .. }
    ));
    assert!(matches!(
        raw_roundtrip(&mut stream, &commit("t")),
        Response::Error(MatchError::UploadIncomplete(_))
    ));

    // A chunk for a different tenant than the session's.
    assert!(matches!(
        raw_roundtrip(&mut stream, &begin("t", &KEY_A, 16, 2, 5)),
        Response::UploadProgress { .. }
    ));
    assert!(matches!(
        raw_roundtrip(&mut stream, &chunk("u", 0, vec![0; 8])),
        Response::Error(MatchError::UploadIncomplete(_))
    ));

    // An interleaved non-upload request abandons the session (its
    // staging reservation must not be keep-alive-able by pinging), so
    // the next chunk is typed-rejected.
    assert!(matches!(
        raw_roundtrip(&mut stream, &begin("t", &KEY_A, 16, 2, 6)),
        Response::UploadProgress { .. }
    ));
    assert!(matches!(
        raw_roundtrip(&mut stream, &Request::Ping),
        Response::Pong { .. }
    ));
    assert!(matches!(
        raw_roundtrip(&mut stream, &chunk("t", 0, vec![0; 8])),
        Response::Error(MatchError::UploadIncomplete(_))
    ));

    // Nothing was ever registered, and the connection is still usable.
    match raw_roundtrip(&mut stream, &Request::ListTenants) {
        Response::Tenants(tenants) => assert!(tenants.is_empty()),
        other => panic!("unexpected response: {other:?}"),
    }
    server.shutdown();
}

// ---------------------------------------------------------------------------
// The half-written-chunk regression
// ---------------------------------------------------------------------------

/// The latent gap the ISSUE names: when the server hangs up mid-upload
/// (here scripted to ack `Begin`, read a few bytes of the next frame,
/// and drop the socket), the client must surface the typed
/// [`MatchError::ConnectionClosed`] — not a raw io-error string.
#[test]
fn server_hangup_mid_upload_is_a_typed_connection_closed() {
    use std::io::Read;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let script = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        // Ack the Begin frame like a well-behaved server...
        let _ = read_frame(&mut sock).unwrap().expect("begin frame");
        let ack = Response::UploadProgress {
            received: 0,
            expected: 9,
        };
        write_frame(&mut sock, &ack.encode()).unwrap();
        // ...then read a half chunk frame and hang up mid-request.
        let mut partial = [0u8; 5];
        sock.read_exact(&mut partial).unwrap();
        drop(sock);
    });

    let mut client = MatchClient::connect(addr).unwrap();
    let access = TenantAccess::new("t", &KEY_A);
    let (spec, encoded, _) = plain_payload(1, 9);
    let err = client
        .upload_database(&access, &spec, &encoded, 1)
        .unwrap_err();
    assert_eq!(err, MatchError::ConnectionClosed, "typed, not raw io");
    script.join().unwrap();
}
