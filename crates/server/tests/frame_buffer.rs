//! Property tests for [`cm_server::wire::FrameBuffer`]: incremental
//! reassembly must be byte-for-byte equivalent to blocking
//! [`read_frame`] no matter how the transport fragments the stream, and
//! hostile headers must be rejected before any payload is buffered.

use std::io::Cursor;

use cm_server::wire::{frame_bytes, read_frame, FrameBuffer, MAX_FRAME_BYTES};
use proptest::prelude::*;

/// Deterministic pseudo-random bytes from a seed (splitmix64).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a valid wire stream of `count` frames with pseudo-random
/// payload lengths (including empty payloads), returning the raw bytes
/// and the expected payload sequence.
fn frame_stream(seed: u64, count: usize) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut state = seed;
    let mut stream = Vec::new();
    let mut expected = Vec::new();
    for _ in 0..count {
        let len = (mix(&mut state) % 97) as usize; // 0..=96, zero included
        let payload: Vec<u8> = (0..len).map(|_| mix(&mut state) as u8).collect();
        stream.extend_from_slice(&frame_bytes(&payload).unwrap());
        expected.push(payload);
    }
    (stream, expected)
}

/// Reference decode: repeated blocking `read_frame` over the whole
/// buffer.
fn whole_buffer_frames(stream: &[u8]) -> Vec<Vec<u8>> {
    let mut cursor = Cursor::new(stream);
    let mut frames = Vec::new();
    while let Some(frame) = read_frame(&mut cursor).unwrap() {
        frames.push(frame);
    }
    frames
}

/// Feeds `chunks` into a fresh buffer and drains everything.
fn fed_frames(chunks: &[&[u8]]) -> Vec<Vec<u8>> {
    let mut buffer = FrameBuffer::new();
    let mut frames = Vec::new();
    for chunk in chunks {
        buffer.feed(chunk).unwrap();
        while let Some(frame) = buffer.next_frame() {
            frames.push(frame);
        }
    }
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting a valid stream at EVERY byte boundary yields the same
    /// frames as whole-buffer decoding.
    #[test]
    fn every_split_point_matches_whole_buffer_decode(seed in 0u64..u64::MAX) {
        let (stream, expected) = frame_stream(seed, 1 + (seed % 5) as usize);
        prop_assert_eq!(&whole_buffer_frames(&stream), &expected);
        for split in 0..=stream.len() {
            let (a, b) = stream.split_at(split);
            prop_assert_eq!(&fed_frames(&[a, b]), &expected, "split at {}", split);
        }
    }

    /// Byte-at-a-time dribble — the worst fragmentation a socket can
    /// produce — still reassembles the exact frame sequence.
    #[test]
    fn byte_at_a_time_dribble_matches(seed in 0u64..u64::MAX) {
        let (stream, expected) = frame_stream(seed, 1 + (seed % 4) as usize);
        let chunks: Vec<&[u8]> = stream.chunks(1).collect();
        prop_assert_eq!(&fed_frames(&chunks), &expected);
    }

    /// Random chunk sizes (mixed fragmentation) match too.
    #[test]
    fn random_chunking_matches(seed in 0u64..u64::MAX) {
        let (stream, expected) = frame_stream(seed, 1 + (seed % 6) as usize);
        let mut state = seed ^ 0xDEAD_BEEF;
        let mut chunks = Vec::new();
        let mut rest = &stream[..];
        while !rest.is_empty() {
            let take = 1 + (mix(&mut state) as usize % 13).min(rest.len() - 1);
            let (a, b) = rest.split_at(take);
            chunks.push(a);
            rest = b;
        }
        prop_assert_eq!(&fed_frames(&chunks), &expected);
    }
}

/// Regression: an oversized length prefix is rejected the moment the
/// header completes — before a single payload byte is buffered — and
/// the failure is sticky.
#[test]
fn oversized_length_prefix_is_rejected_before_buffering() {
    let mut buffer = FrameBuffer::new();
    let mut header = Vec::new();
    header.extend_from_slice(b"CMS1");
    header.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
    let err = buffer.feed(&header).unwrap_err();
    assert!(format!("{err}").contains("size cap"), "{err}");
    // Nothing was buffered for the hostile frame, and nothing ever is:
    // later feeds fail sticky without accumulating the declared payload.
    assert_eq!(buffer.buffered_bytes(), 0);
    assert!(buffer.feed(&[0u8; 1024]).is_err());
    assert_eq!(buffer.buffered_bytes(), 0);
    assert!(buffer.next_frame().is_none());
}

/// Regression: the header is validated even when it arrives one byte at
/// a time, and payload bytes for an oversized declaration are never
/// accepted.
#[test]
fn oversized_prefix_dribbled_is_still_rejected_at_header_completion() {
    let mut buffer = FrameBuffer::new();
    let mut header = Vec::new();
    header.extend_from_slice(b"CMS1");
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    for (i, byte) in header.iter().enumerate() {
        let result = buffer.feed(&[*byte]);
        if i < 7 {
            assert!(result.is_ok(), "byte {i} completed no header");
        } else {
            assert!(result.is_err(), "full header must be rejected");
        }
    }
    assert_eq!(buffer.buffered_bytes(), 0);
}

/// Bad magic is rejected identically to `read_frame`.
#[test]
fn bad_magic_is_rejected() {
    let mut buffer = FrameBuffer::new();
    let err = buffer.feed(b"BOGUS123").unwrap_err();
    assert!(format!("{err}").contains("magic"), "{err}");
    let whole = read_frame(&mut Cursor::new(b"BOGUS123".to_vec())).unwrap_err();
    assert_eq!(format!("{err}"), format!("{whole}"));
}

/// Zero-length frames are emitted exactly at header completion — the
/// edge a chunked feed loop is most likely to lose.
#[test]
fn zero_length_frames_are_emitted() {
    let stream = [
        frame_bytes(&[]).unwrap(),
        frame_bytes(b"x").unwrap(),
        frame_bytes(&[]).unwrap(),
    ]
    .concat();
    let chunks: Vec<&[u8]> = stream.chunks(3).collect();
    let frames = fed_frames(&chunks);
    assert_eq!(frames, vec![Vec::new(), b"x".to_vec(), Vec::new()]);
}
