//! Exhaustive wire-tag coverage: every [`Request`] and [`Response`]
//! variant round-trips through the codec, every [`MatchError`] variant
//! crosses the wire as an error frame, and the tag byte each one
//! actually emits is cross-checked against the `mod tags` registry in
//! `wire.rs` as parsed by the `cm_analyze` lint — so the lint's tag
//! table, the codec, and this test can never silently disagree.

use std::collections::BTreeMap;
use std::time::Duration;

use cm_bfv::DecodeError;
use cm_core::{Backend, BitString, MatchError, MatchStats};
use cm_server::{
    DatabaseInfoReply, EvictAuth, QueryPayload, Request, Response, TenantInfo, TenantSpec,
    UploadAuth, UploadPhase,
};

/// The registry parsed straight out of this crate's `wire.rs` source,
/// exactly as the `wire-tags` lint rule sees it.
fn tag_table() -> BTreeMap<String, u64> {
    cm_analyze::wire_tag_table(include_str!("../src/wire.rs"))
        .into_iter()
        .map(|c| (c.name, c.value))
        .collect()
}

fn tag(table: &BTreeMap<String, u64>, name: &str) -> u8 {
    let v = *table
        .get(name)
        .unwrap_or_else(|| panic!("{name} is not in the wire.rs tag registry"));
    u8::try_from(v).expect("tag fits a byte")
}

/// A spec that survives `read_spec`'s validation (non-empty known
/// backend, worker count in range).
fn spec() -> TenantSpec {
    TenantSpec {
        backend: "plain".to_string(),
        seed: 7,
        window: 16,
        threads: 2,
        insecure: true,
        workers: 3,
    }
}

fn upload_auth() -> UploadAuth {
    UploadAuth {
        nonce: 9,
        channel_key: [0xA5; 32],
        content: [0x1B; 16],
        tag: [0xC3; 16],
    }
}

/// Every request variant, its registry tag name, and (where the payload
/// carries a second dispatch byte) the sub-tag name + the byte offset
/// the sub-tag is encoded at: `1 (request tag) + 2 (tenant length
/// prefix) + tenant.len()`.
type RequestCase = (Request, &'static str, Option<(&'static str, usize)>);

fn request_cases() -> Vec<RequestCase> {
    let tenant = "t".to_string();
    let sub_at = 1 + 2 + tenant.len();
    vec![
        (Request::Ping, "REQ_PING", None),
        (Request::ListTenants, "REQ_LIST_TENANTS", None),
        (
            Request::Match {
                tenant: tenant.clone(),
                query: QueryPayload::Bits(BitString::from_bytes(&[0xF0, 0x0D])),
            },
            "REQ_MATCH",
            Some(("QUERY_BITS", sub_at)),
        ),
        (
            Request::Match {
                tenant: tenant.clone(),
                query: QueryPayload::CmWire(vec![1, 2, 3, 4]),
            },
            "REQ_MATCH",
            Some(("QUERY_CM_WIRE", sub_at)),
        ),
        (
            Request::TenantStats {
                tenant: tenant.clone(),
            },
            "REQ_TENANT_STATS",
            None,
        ),
        (
            Request::LoadDatabase {
                tenant: tenant.clone(),
                phase: UploadPhase::Begin {
                    auth: upload_auth(),
                    spec: spec(),
                    total_bytes: 4096,
                    chunk_count: 2,
                },
            },
            "REQ_LOAD_DATABASE",
            Some(("PHASE_BEGIN", sub_at)),
        ),
        (
            Request::LoadDatabase {
                tenant: tenant.clone(),
                phase: UploadPhase::Chunk {
                    index: 1,
                    data: vec![0xEE; 64],
                },
            },
            "REQ_LOAD_DATABASE",
            Some(("PHASE_CHUNK", sub_at)),
        ),
        (
            Request::LoadDatabase {
                tenant: tenant.clone(),
                phase: UploadPhase::Commit,
            },
            "REQ_LOAD_DATABASE",
            Some(("PHASE_COMMIT", sub_at)),
        ),
        (
            Request::EvictDatabase {
                tenant: tenant.clone(),
                auth: EvictAuth {
                    nonce: 11,
                    tag: [0x5C; 16],
                },
            },
            "REQ_EVICT_DATABASE",
            None,
        ),
        (Request::DatabaseInfo { tenant }, "REQ_DATABASE_INFO", None),
        (Request::Metrics, "REQ_METRICS", None),
    ]
}

/// A small but non-degenerate snapshot: one labeled counter, one
/// negative gauge, one histogram with populated buckets.
fn snapshot() -> cm_telemetry::MetricsSnapshot {
    use cm_telemetry::metric_names;
    let registry = cm_telemetry::MetricsRegistry::new();
    registry
        .register_counter(metric_names::SERVER_REQUESTS, &[("tag", "match")])
        .add(17);
    registry
        .register_gauge(metric_names::EXEC_QUEUE_DEPTH, &[("pool", "frames")])
        .add(-3);
    let latency = registry.register_histogram(metric_names::SERVER_REQUEST_LATENCY_US, &[]);
    for us in [0, 1, 9, 100, 5_000] {
        latency.record(us);
    }
    registry.snapshot()
}

fn stats(seed: u64) -> MatchStats {
    MatchStats {
        hom_adds: seed,
        hom_muls: seed + 1,
        rotations: seed + 2,
        bootstraps: seed + 3,
        bytes_moved: seed + 4,
        flash_wear: seed + 5,
        add_time: Duration::from_nanos(1_000 + seed),
        mul_time: Duration::from_nanos(2_000 + seed),
    }
}

/// Every non-error response variant and its registry tag name.
fn response_cases() -> Vec<(Response, &'static str)> {
    vec![
        (
            Response::Pong {
                backends: vec!["plain".into(), "ciphermatch".into()],
            },
            "RESP_PONG",
        ),
        (
            Response::Tenants(vec![
                TenantInfo {
                    id: "alice".into(),
                    backend: "plain".into(),
                },
                TenantInfo {
                    id: "bob".into(),
                    backend: "ifp".into(),
                },
            ]),
            "RESP_TENANTS",
        ),
        (
            Response::Matched {
                nonce: 42,
                sealed_indices: vec![9, 8, 7],
                stats: stats(10),
                shard_stats: vec![stats(20), stats(30)],
                seal_latency: Duration::from_nanos(12_345),
            },
            "RESP_MATCHED",
        ),
        (
            Response::TenantStats {
                stats: stats(40),
                queries: 17,
            },
            "RESP_TENANT_STATS",
        ),
        (
            Response::UploadProgress {
                received: 512,
                expected: 4096,
            },
            "RESP_UPLOAD_PROGRESS",
        ),
        (
            Response::DatabaseLoaded {
                bytes: 4096,
                demoted: vec!["carla".into()],
            },
            "RESP_DATABASE_LOADED",
        ),
        (Response::Evicted { freed_bytes: 4096 }, "RESP_EVICTED"),
        (
            Response::DatabaseInfo(DatabaseInfoReply {
                backend: "plain".into(),
                resident: true,
                pinned: false,
                bytes: 4096,
                workers: 3,
                queries: 17,
                tier: "dram".into(),
            }),
            "RESP_DATABASE_INFO",
        ),
        (Response::Metrics(snapshot()), "RESP_METRICS"),
    ]
}

/// Every [`MatchError`] variant, built so decoding reproduces the value
/// exactly (static-string payloads cross the wire as the `"remote"`
/// placeholder, so the originals here already carry it), paired with
/// its `ERR_*` registry name.
fn error_cases() -> Vec<(MatchError, &'static str)> {
    vec![
        (MatchError::NoIndexGenerator, "ERR_NO_INDEX_GENERATOR"),
        (MatchError::NoDatabase, "ERR_NO_DATABASE"),
        (MatchError::EmptyQuery, "ERR_EMPTY_QUERY"),
        (
            MatchError::QueryTooLong { max: 128, got: 256 },
            "ERR_QUERY_TOO_LONG",
        ),
        (
            MatchError::WindowMismatch {
                expected: 16,
                got: 24,
            },
            "ERR_WINDOW_MISMATCH",
        ),
        (MatchError::WorkerPanicked, "ERR_WORKER_PANICKED"),
        (MatchError::InvalidConfig("remote"), "ERR_INVALID_CONFIG"),
        (MatchError::Decode(DecodeError::Truncated), "ERR_DECODE"),
        (
            MatchError::WireQueryUnsupported(Backend::Boolean),
            "ERR_WIRE_QUERY_UNSUPPORTED",
        ),
        (
            MatchError::UnknownBackend("what-backend".into()),
            "ERR_UNKNOWN_BACKEND",
        ),
        (
            MatchError::UnknownTenant("nobody".into()),
            "ERR_UNKNOWN_TENANT",
        ),
        (MatchError::Frame("remote"), "ERR_FRAME"),
        (
            MatchError::Transport("connection reset".into()),
            "ERR_TRANSPORT",
        ),
        (
            MatchError::ServerBusy {
                max_open_sockets: 64,
            },
            "ERR_SERVER_BUSY",
        ),
        (MatchError::Unauthorized("remote"), "ERR_UNAUTHORIZED"),
        (
            MatchError::QuotaExceeded {
                budget: 1 << 20,
                required: 1 << 21,
            },
            "ERR_QUOTA_EXCEEDED",
        ),
        (
            MatchError::UploadIncomplete("remote"),
            "ERR_UPLOAD_INCOMPLETE",
        ),
        (
            MatchError::WireDatabaseUnsupported(Backend::Yasuda),
            "ERR_WIRE_DATABASE_UNSUPPORTED",
        ),
        (MatchError::ConnectionClosed, "ERR_CONNECTION_CLOSED"),
        (MatchError::Internal("remote"), "ERR_INTERNAL"),
    ]
}

/// The `DECODE_*` sub-code travels in the error payload's first `u64`
/// (bytes 2..10 of the encoded response, after `RESP_ERROR` and the
/// `ERR_DECODE` tag).
fn decode_cases() -> Vec<(DecodeError, &'static str)> {
    vec![
        (DecodeError::Truncated, "DECODE_TRUNCATED"),
        (DecodeError::BadMagic, "DECODE_BAD_MAGIC"),
        (DecodeError::BadHeader("remote"), "DECODE_BAD_HEADER"),
        (
            DecodeError::CoefficientOverflow,
            "DECODE_COEFFICIENT_OVERFLOW",
        ),
    ]
}

#[test]
fn every_request_variant_round_trips_on_its_registered_tag() {
    let table = tag_table();
    let mut seen = Vec::new();
    let mut sub_seen = Vec::new();
    for (request, tag_name, sub) in request_cases() {
        let encoded = request.encode();
        assert_eq!(
            encoded[0],
            tag(&table, tag_name),
            "{request:?} did not encode under {tag_name}"
        );
        if let Some((sub_name, at)) = sub {
            assert_eq!(
                encoded[at],
                tag(&table, sub_name),
                "{request:?} did not carry sub-tag {sub_name} at byte {at}"
            );
            sub_seen.push(table[sub_name]);
        }
        let decoded = Request::decode(&encoded).expect("round-trip decodes");
        assert_eq!(decoded, request);
        seen.push(table[tag_name]);
    }
    assert_covers_family(&table, "REQ_", &seen);
    // QUERY_* and PHASE_* share one value space in `sub_seen`, but the
    // coverage check only compares values within each family, and both
    // families' full value sets were pushed above.
    assert_covers_family(&table, "QUERY_", &sub_seen);
    assert_covers_family(&table, "PHASE_", &sub_seen);
}

#[test]
fn every_response_variant_round_trips_on_its_registered_tag() {
    let table = tag_table();
    let mut seen = Vec::new();
    for (response, tag_name) in response_cases() {
        let encoded = response.encode();
        assert_eq!(
            encoded[0],
            tag(&table, tag_name),
            "{response:?} did not encode under {tag_name}"
        );
        let decoded = Response::decode(&encoded).expect("round-trip decodes");
        assert_eq!(decoded, response);
        seen.push(table[tag_name]);
    }
    // The error variant is exercised (exhaustively) by the tests below.
    seen.push(table["RESP_ERROR"]);
    assert_covers_family(&table, "RESP_", &seen);
}

#[test]
fn every_match_error_round_trips_on_its_registered_tag() {
    let table = tag_table();
    let resp_error = tag(&table, "RESP_ERROR");
    let mut seen = Vec::new();
    for (error, tag_name) in error_cases() {
        let response = Response::Error(error);
        let encoded = response.encode();
        assert_eq!(encoded[0], resp_error);
        assert_eq!(
            encoded[1],
            tag(&table, tag_name),
            "{response:?} did not encode under {tag_name}"
        );
        let decoded = Response::decode(&encoded).expect("round-trip decodes");
        assert_eq!(decoded, response);
        seen.push(table[tag_name]);
    }
    assert_covers_family(&table, "ERR_", &seen);
}

#[test]
fn every_decode_sub_code_round_trips_in_the_error_payload() {
    let table = tag_table();
    let mut seen = Vec::new();
    for (inner, sub_name) in decode_cases() {
        let response = Response::Error(MatchError::Decode(inner));
        let encoded = response.encode();
        assert_eq!(encoded[1], tag(&table, "ERR_DECODE"));
        let sub = u64::from_le_bytes(encoded[2..10].try_into().expect("8 bytes"));
        assert_eq!(
            sub, table[sub_name],
            "{response:?} did not carry sub-code {sub_name}"
        );
        let decoded = Response::decode(&encoded).expect("round-trip decodes");
        assert_eq!(decoded, response);
        seen.push(table[sub_name]);
    }
    assert_covers_family(&table, "DECODE_", &seen);
}

/// Fails if the registry defines a tag in `family` that no case above
/// exercised — adding a wire variant without extending this test is an
/// error, exactly like adding one without registering its tag.
fn assert_covers_family(table: &BTreeMap<String, u64>, family: &str, seen: &[u64]) {
    for (name, value) in table {
        if !name.starts_with(family) {
            continue;
        }
        assert!(
            seen.contains(value),
            "registry tag {name} = {value} is not exercised by this test; \
             add a case for the new wire variant"
        );
    }
}
