//! End-to-end tests of SIMD batching: slot-wise arithmetic under
//! encryption, row rotation and column swap.

use cm_bfv::{BatchEncoder, BfvContext, BfvParams, Decryptor, Encryptor, Evaluator, KeyGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    ctx: BfvContext,
}

impl Fixture {
    fn new() -> Self {
        Self {
            ctx: BfvContext::new(BfvParams::insecure_test_batch()),
        }
    }
}

#[test]
fn batched_hom_add_is_slotwise() {
    let f = Fixture::new();
    let mut rng = StdRng::seed_from_u64(100);
    let kg = KeyGenerator::new(&f.ctx, &mut rng);
    let pk = kg.public_key(&mut rng);
    let enc = Encryptor::new(&f.ctx, pk);
    let dec = Decryptor::new(&f.ctx, kg.secret_key());
    let ev = Evaluator::new(&f.ctx);
    let coder = BatchEncoder::new(&f.ctx);

    let t = f.ctx.params().t;
    let a: Vec<u64> = (0..coder.slot_count() as u64).map(|i| i * 7 % t).collect();
    let b: Vec<u64> = (0..coder.slot_count() as u64).map(|i| i * i % t).collect();
    let ct = ev.add(
        &enc.encrypt(&coder.encode(&a), &mut rng),
        &enc.encrypt(&coder.encode(&b), &mut rng),
    );
    let got = coder.decode(&dec.decrypt(&ct));
    let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| (x + y) % t).collect();
    assert_eq!(got, expect);
}

#[test]
fn batched_hom_mul_is_slotwise() {
    let f = Fixture::new();
    let mut rng = StdRng::seed_from_u64(101);
    let kg = KeyGenerator::new(&f.ctx, &mut rng);
    let pk = kg.public_key(&mut rng);
    let rk = kg.relin_key(&mut rng);
    let enc = Encryptor::new(&f.ctx, pk);
    let dec = Decryptor::new(&f.ctx, kg.secret_key());
    let ev = Evaluator::new(&f.ctx);
    let coder = BatchEncoder::new(&f.ctx);

    let t = f.ctx.params().t;
    let a: Vec<u64> = (0..coder.slot_count() as u64)
        .map(|i| (i + 1) % t)
        .collect();
    let b: Vec<u64> = (0..coder.slot_count() as u64)
        .map(|i| (2 * i + 3) % t)
        .collect();
    let prod = ev.relinearize(
        &ev.multiply(
            &enc.encrypt(&coder.encode(&a), &mut rng),
            &enc.encrypt(&coder.encode(&b), &mut rng),
        ),
        &rk,
    );
    assert!(dec.invariant_noise_budget(&prod) > 0.5, "noise exhausted");
    let got = coder.decode(&dec.decrypt(&prod));
    let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x * y % t).collect();
    assert_eq!(got, expect);
}

#[test]
fn row_rotation_permutes_slots_cyclically() {
    let f = Fixture::new();
    let mut rng = StdRng::seed_from_u64(102);
    let kg = KeyGenerator::new(&f.ctx, &mut rng);
    let pk = kg.public_key(&mut rng);
    let elems = kg.default_galois_elements();
    let gk = kg.galois_keys(&elems, &mut rng);
    let enc = Encryptor::new(&f.ctx, pk);
    let dec = Decryptor::new(&f.ctx, kg.secret_key());
    let ev = Evaluator::new(&f.ctx);
    let coder = BatchEncoder::new(&f.ctx);

    let n = coder.slot_count();
    let half = n / 2;
    let values: Vec<u64> = (0..n as u64).collect();
    let ct = enc.encrypt(&coder.encode(&values), &mut rng);
    let rotated = ev.rotate_rows(&ct, 1, &gk);
    let got = coder.decode(&dec.decrypt(&rotated));

    // Rotation must permute each row (half) cyclically by one position, in
    // one direction or the other depending on convention. Verify it is
    // exactly one of the two cyclic shifts and that rows do not mix.
    let left: Vec<u64> = (0..half)
        .map(|i| values[(i + 1) % half])
        .chain((0..half).map(|i| values[half + (i + 1) % half]))
        .collect();
    let right: Vec<u64> = (0..half)
        .map(|i| values[(i + half - 1) % half])
        .chain((0..half).map(|i| values[half + (i + half - 1) % half]))
        .collect();
    assert!(
        got == left || got == right,
        "rotation is not a cyclic row shift: {:?}...",
        &got[..8]
    );
}

#[test]
fn column_swap_exchanges_rows() {
    let f = Fixture::new();
    let mut rng = StdRng::seed_from_u64(103);
    let kg = KeyGenerator::new(&f.ctx, &mut rng);
    let pk = kg.public_key(&mut rng);
    let n = f.ctx.params().n;
    let gk = kg.galois_keys(&[2 * n - 1], &mut rng);
    let enc = Encryptor::new(&f.ctx, pk);
    let dec = Decryptor::new(&f.ctx, kg.secret_key());
    let ev = Evaluator::new(&f.ctx);
    let coder = BatchEncoder::new(&f.ctx);

    let half = n / 2;
    let values: Vec<u64> = (0..n as u64).collect();
    let ct = enc.encrypt(&coder.encode(&values), &mut rng);
    let swapped = ev.rotate_columns(&ct, &gk);
    let got = coder.decode(&dec.decrypt(&swapped));
    let expect: Vec<u64> = values[half..]
        .iter()
        .chain(values[..half].iter())
        .copied()
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn rotation_by_zero_is_identity() {
    let f = Fixture::new();
    let mut rng = StdRng::seed_from_u64(104);
    let kg = KeyGenerator::new(&f.ctx, &mut rng);
    let pk = kg.public_key(&mut rng);
    let gk = kg.galois_keys(&kg.default_galois_elements(), &mut rng);
    let enc = Encryptor::new(&f.ctx, pk);
    let ev = Evaluator::new(&f.ctx);
    let coder = BatchEncoder::new(&f.ctx);
    let ct = enc.encrypt(&coder.encode(&[1, 2, 3]), &mut rng);
    assert_eq!(ev.rotate_rows(&ct, 0, &gk), ct);
}
