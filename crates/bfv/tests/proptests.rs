//! Property-based tests of the BFV scheme: decryption correctness,
//! additive homomorphism, and noise-budget behaviour under accumulation
//! (failure-injection: correctness must hold exactly while the budget is
//! positive).

use cm_bfv::{
    BfvContext, BfvParams, CoefficientEncoder, Decryptor, Encryptor, Evaluator, KeyGenerator,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    ctx: BfvContext,
    sk: cm_bfv::SecretKey,
    pk: cm_bfv::PublicKey,
}

fn fixture(seed: u64) -> Fixture {
    let ctx = BfvContext::new(BfvParams::insecure_test_add());
    let mut rng = StdRng::seed_from_u64(seed);
    let (sk, pk) = {
        let kg = KeyGenerator::new(&ctx, &mut rng);
        (kg.secret_key(), kg.public_key(&mut rng))
    };
    Fixture { ctx, sk, pk }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn encrypt_decrypt_roundtrip(values in prop::collection::vec(0u64..256, 1..256), seed in 0u64..1000) {
        let f = fixture(seed);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let coder = CoefficientEncoder::new(&f.ctx);
        let enc = Encryptor::new(&f.ctx, f.pk.clone());
        let dec = Decryptor::new(&f.ctx, f.sk.clone());
        let pt = coder.encode(&values);
        let ct = enc.encrypt(&pt, &mut rng);
        prop_assert_eq!(dec.decrypt(&ct), pt);
    }

    #[test]
    fn hom_add_is_slot_wise_mod_t(
        a in prop::collection::vec(0u64..256, 1..64),
        b in prop::collection::vec(0u64..256, 1..64),
        seed in 0u64..1000,
    ) {
        let f = fixture(seed);
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let coder = CoefficientEncoder::new(&f.ctx);
        let enc = Encryptor::new(&f.ctx, f.pk.clone());
        let dec = Decryptor::new(&f.ctx, f.sk.clone());
        let ev = Evaluator::new(&f.ctx);
        let t = f.ctx.params().t;
        let ct = ev.add(
            &enc.encrypt(&coder.encode(&a), &mut rng),
            &enc.encrypt(&coder.encode(&b), &mut rng),
        );
        let got = dec.decrypt(&ct);
        for i in 0..a.len().max(b.len()) {
            let ea = a.get(i).copied().unwrap_or(0);
            let eb = b.get(i).copied().unwrap_or(0);
            prop_assert_eq!(got.coeffs()[i], (ea + eb) % t, "slot {}", i);
        }
    }

    #[test]
    fn negation_and_subtraction_are_inverses(
        a in prop::collection::vec(0u64..256, 1..32),
        seed in 0u64..1000,
    ) {
        let f = fixture(seed);
        let mut rng = StdRng::seed_from_u64(seed + 3);
        let coder = CoefficientEncoder::new(&f.ctx);
        let enc = Encryptor::new(&f.ctx, f.pk.clone());
        let dec = Decryptor::new(&f.ctx, f.sk.clone());
        let ev = Evaluator::new(&f.ctx);
        let ct = enc.encrypt(&coder.encode(&a), &mut rng);
        // a + (-a) = 0 and a - a = 0.
        prop_assert!(dec.decrypt(&ev.add(&ct, &ev.negate(&ct))).poly().is_zero());
        prop_assert!(dec.decrypt(&ev.sub(&ct, &ct)).poly().is_zero());
    }
}

#[test]
fn noise_budget_decreases_monotonically_and_correctness_holds() {
    // Accumulate many fresh encryptions of 1. While the reported budget is
    // positive, the decrypted count must be exact.
    let f = fixture(77);
    let mut rng = StdRng::seed_from_u64(78);
    let coder = CoefficientEncoder::new(&f.ctx);
    let enc = Encryptor::new(&f.ctx, f.pk.clone());
    let dec = Decryptor::new(&f.ctx, f.sk.clone());
    let ev = Evaluator::new(&f.ctx);
    let one = coder.encode(&[1]);
    let mut acc = enc.encrypt(&one, &mut rng);
    let mut last_budget = dec.invariant_noise_budget(&acc);
    let t = f.ctx.params().t;
    for i in 2..=200u64 {
        acc = ev.add(&acc, &enc.encrypt(&one, &mut rng));
        let budget = dec.invariant_noise_budget(&acc);
        assert!(
            budget <= last_budget + 0.5,
            "budget must not grow: {last_budget} -> {budget} at {i}"
        );
        last_budget = budget;
        if budget > 0.0 {
            assert_eq!(dec.decrypt(&acc).coeffs()[0], i % t, "count wrong at {i}");
        }
    }
    assert!(
        last_budget > 0.0,
        "200 additions must fit the paper-class budget"
    );
}

#[test]
fn deep_multiplication_exhausts_budget_gracefully() {
    // Squaring repeatedly must eventually exhaust the budget; the budget
    // metric must hit zero before (or when) decryption goes wrong.
    let ctx = BfvContext::new(BfvParams::insecure_test_mul());
    let mut rng = StdRng::seed_from_u64(99);
    let (sk, pk) = {
        let kg = KeyGenerator::new(&ctx, &mut rng);
        (kg.secret_key(), kg.public_key(&mut rng))
    };
    let rk = KeyGenerator::from_secret(&ctx, sk.clone()).relin_key(&mut rng);
    let coder = CoefficientEncoder::new(&ctx);
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk);
    let ev = Evaluator::new(&ctx);
    let mut ct = enc.encrypt(&coder.encode(&[3]), &mut rng);
    let mut value = 3u64;
    let t = ctx.params().t;
    let fresh_budget = dec.invariant_noise_budget(&ct);
    assert!(
        fresh_budget > 10.0,
        "fresh budget too small: {fresh_budget}"
    );
    let mut min_budget = fresh_budget;
    for round in 1..=6 {
        ct = ev.relinearize(&ev.multiply(&ct, &ct), &rk);
        value = value * value % t;
        let budget = dec.invariant_noise_budget(&ct);
        // The headroom must shrink strictly with depth (until it saturates
        // near zero, where the metric clamps).
        assert!(
            budget < min_budget || budget < 2.0,
            "round {round}: budget {budget} did not shrink from {min_budget}"
        );
        min_budget = min_budget.min(budget);
        // While comfortably inside the budget, results must be exact.
        if budget > 3.0 {
            assert_eq!(
                dec.decrypt(&ct).coeffs()[0],
                value,
                "wrong at round {round}"
            );
        }
    }
    // A single-level parameter set cannot survive six squarings: the
    // budget must be (nearly) exhausted by now.
    assert!(
        min_budget < 3.0,
        "six squarings left {min_budget} bits of budget — noise model broken"
    );
}
