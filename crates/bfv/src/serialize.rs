//! Compact binary serialization of ciphertexts.
//!
//! An encrypted CIPHERMATCH database is uploaded once and lives on the
//! server/SSD; this module provides the wire/storage format: coefficients
//! packed at `ceil(q_bits / 8)` bytes each with a small self-describing
//! header. The same packing defines the footprints reported in Fig. 2a.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cm_hemath::Poly;

use crate::ciphertext::Ciphertext;

/// Magic bytes identifying the format ("CMC1").
const MAGIC: u32 = 0x434D_4331;

/// Errors produced when decoding serialized ciphertexts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than its header claims.
    Truncated,
    /// The magic bytes do not match this format.
    BadMagic,
    /// A header field has an impossible value.
    BadHeader(&'static str),
    /// A coefficient exceeds the stated modulus width.
    CoefficientOverflow,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "serialized ciphertext is truncated"),
            DecodeError::BadMagic => write!(f, "not a serialized ciphertext (bad magic)"),
            DecodeError::BadHeader(what) => write!(f, "invalid header field: {what}"),
            DecodeError::CoefficientOverflow => {
                write!(f, "coefficient exceeds the declared modulus width")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Bytes per coefficient for a `q_bits`-bit modulus.
fn coeff_bytes(q_bits: u32) -> usize {
    q_bits.div_ceil(8) as usize
}

/// Serializes a ciphertext with coefficients packed at
/// `ceil(q_bits / 8)` bytes.
///
/// # Panics
///
/// Panics if any coefficient does not fit in `q_bits` bits (the caller
/// controls the modulus and must pass a consistent width).
pub fn encode_ciphertext(ct: &Ciphertext, q_bits: u32) -> Bytes {
    assert!((1..=64).contains(&q_bits), "q_bits must be in 1..=64");
    let n = ct.part(0).len();
    let cb = coeff_bytes(q_bits);
    let mut buf = BytesMut::with_capacity(16 + ct.size() * n * cb);
    buf.put_u32(MAGIC);
    buf.put_u8(ct.size() as u8);
    buf.put_u8(q_bits as u8);
    buf.put_u16(0); // reserved
    buf.put_u32(n as u32);
    let limit = if q_bits == 64 {
        u64::MAX
    } else {
        (1u64 << q_bits) - 1
    };
    for part in ct.parts() {
        for &c in part.coeffs() {
            assert!(c <= limit, "coefficient wider than q_bits");
            buf.put_slice(&c.to_le_bytes()[..cb]);
        }
    }
    buf.freeze()
}

/// Decodes a ciphertext produced by [`encode_ciphertext`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input; never panics on
/// untrusted bytes.
pub fn decode_ciphertext(data: &[u8]) -> Result<Ciphertext, DecodeError> {
    let mut buf = data;
    if buf.len() < 12 {
        return Err(DecodeError::Truncated);
    }
    if buf.get_u32() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let size = buf.get_u8() as usize;
    let q_bits = buf.get_u8() as u32;
    let _reserved = buf.get_u16();
    let n = buf.get_u32() as usize;
    if size < 2 {
        return Err(DecodeError::BadHeader("ciphertext size below 2"));
    }
    if !(1..=64).contains(&q_bits) {
        return Err(DecodeError::BadHeader("q_bits out of range"));
    }
    if n == 0 || !n.is_power_of_two() {
        return Err(DecodeError::BadHeader("ring degree"));
    }
    let cb = coeff_bytes(q_bits);
    if buf.remaining() != size * n * cb {
        return Err(DecodeError::Truncated);
    }
    let limit = if q_bits == 64 {
        u64::MAX
    } else {
        (1u64 << q_bits) - 1
    };
    let mut parts = Vec::with_capacity(size);
    for _ in 0..size {
        let mut coeffs = Vec::with_capacity(n);
        for _ in 0..n {
            let mut raw = [0u8; 8];
            buf.copy_to_slice(&mut raw[..cb]);
            let c = u64::from_le_bytes(raw);
            if c > limit {
                return Err(DecodeError::CoefficientOverflow);
            }
            coeffs.push(c);
        }
        parts.push(Poly::from_coeffs(coeffs));
    }
    Ok(Ciphertext::from_parts(parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{BfvContext, BfvParams};
    use crate::{CoefficientEncoder, Decryptor, Encryptor, KeyGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_ct(params: BfvParams) -> (BfvContext, Ciphertext, u32) {
        let ctx = BfvContext::new(params);
        let q_bits = 64 - ctx.params().q.leading_zeros();
        let mut rng = StdRng::seed_from_u64(9);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        let enc = Encryptor::new(&ctx, pk);
        let coder = CoefficientEncoder::new(&ctx);
        let ct = enc.encrypt(&coder.encode(&[1, 2, 3, 99]), &mut rng);
        (ctx, ct, q_bits)
    }

    #[test]
    fn roundtrip_is_exact() {
        for params in [
            BfvParams::insecure_test_add(),
            BfvParams::insecure_test_mul(),
        ] {
            let (_, ct, q_bits) = sample_ct(params);
            let bytes = encode_ciphertext(&ct, q_bits);
            assert_eq!(decode_ciphertext(&bytes).unwrap(), ct);
        }
    }

    #[test]
    fn decoded_ciphertext_still_decrypts() {
        let ctx = BfvContext::new(BfvParams::ciphermatch_1024());
        let mut rng = StdRng::seed_from_u64(10);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        let sk = kg.secret_key();
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let coder = CoefficientEncoder::new(&ctx);
        let ct = enc.encrypt(&coder.encode(&[42, 65535]), &mut rng);
        let restored = decode_ciphertext(&encode_ciphertext(&ct, 32)).unwrap();
        let got = dec.decrypt(&restored);
        assert_eq!(&got.coeffs()[..2], &[42, 65535]);
    }

    #[test]
    fn footprint_matches_fig2a_accounting() {
        // Serialized size = header + byte_size(q_bits): the Fig. 2a
        // footprint is literally what goes on the wire.
        let (_, ct, q_bits) = sample_ct(BfvParams::insecure_test_add());
        let bytes = encode_ciphertext(&ct, q_bits);
        assert_eq!(bytes.len(), 12 + ct.byte_size(q_bits));
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        let (_, ct, q_bits) = sample_ct(BfvParams::insecure_test_add());
        let good = encode_ciphertext(&ct, q_bits);
        assert_eq!(decode_ciphertext(&good[..5]), Err(DecodeError::Truncated));
        let mut bad_magic = good.to_vec();
        bad_magic[0] ^= 0xFF;
        assert_eq!(decode_ciphertext(&bad_magic), Err(DecodeError::BadMagic));
        let mut truncated = good.to_vec();
        truncated.pop();
        assert_eq!(decode_ciphertext(&truncated), Err(DecodeError::Truncated));
        // Garbage of plausible length.
        assert!(decode_ciphertext(&[0u8; 64]).is_err());
    }

    #[test]
    fn overflowing_coefficients_rejected() {
        let (_, ct, q_bits) = sample_ct(BfvParams::insecure_test_add());
        let mut bytes = encode_ciphertext(&ct, q_bits).to_vec();
        // q_bits = 32 for this preset: a coefficient occupies 4 bytes.
        // Claim q_bits = 31 in the header: the stream now has coefficients
        // exceeding the declared width.
        bytes[5] = 31;
        // Adjust the length check: 31 bits still packs into 4 bytes, so
        // lengths agree and the overflow check must fire.
        let err = decode_ciphertext(&bytes).unwrap_err();
        assert_eq!(err, DecodeError::CoefficientOverflow);
    }
}
