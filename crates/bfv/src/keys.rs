//! Key material: secret, public, relinearization and Galois keys.
//!
//! Follows §2.1 of the paper (and the Fan-Vercauteren scheme it cites):
//! ternary secrets, `pk = (-(a s + e), a)`, and gadget-decomposed key
//! switching keys for relinearization (`s^2 -> s`) and Galois rotations
//! (`s(x^g) -> s`).

use std::collections::HashMap;

use cm_hemath::{gaussian_poly, ternary_poly, uniform_poly, Poly};
use rand::Rng;

use crate::params::BfvContext;

/// The secret key `s`, a ternary ring element.
#[derive(Debug, Clone)]
pub struct SecretKey {
    pub(crate) s: Poly,
}

impl SecretKey {
    /// Borrows the secret polynomial (exposed for noise-budget tooling and
    /// tests; treat with care).
    pub fn poly(&self) -> &Poly {
        &self.s
    }
}

/// The public key pair `(pk0, pk1) = (-(a s + e), a)`.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) pk0: Poly,
    pub(crate) pk1: Poly,
}

/// One gadget level of a key-switching key: `(-(a s + e) + w^i s', a)`.
#[derive(Debug, Clone)]
pub(crate) struct KswLevel {
    pub k0: Poly,
    pub k1: Poly,
}

/// A key-switching key from some source secret `s'` to `s`, decomposed in
/// base `w = 2^decomp_log2`.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    pub(crate) levels: Vec<KswLevel>,
}

/// Relinearization key: key-switching key for `s^2`.
#[derive(Debug, Clone)]
pub struct RelinKey {
    pub(crate) ksw: KeySwitchKey,
}

/// Galois keys: key-switching keys for `s(x^g)`, one per Galois element.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    pub(crate) keys: HashMap<usize, KeySwitchKey>,
}

impl GaloisKeys {
    /// The Galois elements this key set supports.
    pub fn elements(&self) -> impl Iterator<Item = usize> + '_ {
        self.keys.keys().copied()
    }

    /// Whether the element `g` is available.
    pub fn contains(&self, g: usize) -> bool {
        self.keys.contains_key(&g)
    }
}

/// Generates all key material for a context.
#[derive(Debug)]
pub struct KeyGenerator<'a> {
    ctx: &'a BfvContext,
    sk: SecretKey,
}

impl<'a> KeyGenerator<'a> {
    /// Samples a fresh secret key.
    pub fn new<R: Rng + ?Sized>(ctx: &'a BfvContext, rng: &mut R) -> Self {
        let s = ternary_poly(ctx.rq(), rng);
        Self {
            ctx,
            sk: SecretKey { s },
        }
    }

    /// Recreates a generator around an existing secret key (used to derive
    /// additional evaluation keys later).
    pub fn from_secret(ctx: &'a BfvContext, sk: SecretKey) -> Self {
        Self { ctx, sk }
    }

    /// The secret key.
    pub fn secret_key(&self) -> SecretKey {
        self.sk.clone()
    }

    /// Generates the public key `(-(a s + e), a)`.
    pub fn public_key<R: Rng + ?Sized>(&self, rng: &mut R) -> PublicKey {
        let rq = self.ctx.rq();
        let a = uniform_poly(rq, rng);
        let e = gaussian_poly(rq, self.ctx.params().sigma, rng);
        let pk0 = rq.neg(&rq.add(&rq.mul(&a, &self.sk.s), &e));
        PublicKey { pk0, pk1: a }
    }

    /// Generates a key-switching key from `source` to the secret `s`.
    fn ksw_key<R: Rng + ?Sized>(&self, source: &Poly, rng: &mut R) -> KeySwitchKey {
        let rq = self.ctx.rq();
        let params = self.ctx.params();
        let w_log = params.decomp_log2;
        let levels = (0..params.decomp_levels())
            .map(|i| {
                let a = uniform_poly(rq, rng);
                let e = gaussian_poly(rq, params.sigma, rng);
                // w^i mod q (shift may exceed 64 bits of w^i before reduction,
                // so reduce via repeated modular multiplication).
                let wi = {
                    let m = rq.modulus();
                    let mut acc = 1u64;
                    let w = m.reduce(1u64 << w_log);
                    for _ in 0..i {
                        acc = m.mul(acc, w);
                    }
                    acc
                };
                let k0 = rq.add(
                    &rq.neg(&rq.add(&rq.mul(&a, &self.sk.s), &e)),
                    &rq.scalar_mul(source, wi),
                );
                KswLevel { k0, k1: a }
            })
            .collect();
        KeySwitchKey { levels }
    }

    /// Generates the relinearization key (`s^2 -> s`).
    pub fn relin_key<R: Rng + ?Sized>(&self, rng: &mut R) -> RelinKey {
        let s2 = self.ctx.rq().mul(&self.sk.s, &self.sk.s);
        RelinKey {
            ksw: self.ksw_key(&s2, rng),
        }
    }

    /// Generates Galois keys for the given elements (`g` odd).
    ///
    /// # Panics
    ///
    /// Panics if any element is even.
    pub fn galois_keys<R: Rng + ?Sized>(&self, elements: &[usize], rng: &mut R) -> GaloisKeys {
        let rq = self.ctx.rq();
        let mut keys = HashMap::new();
        for &g in elements {
            assert!(g % 2 == 1, "Galois elements must be odd");
            let s_g = rq.automorphism(&self.sk.s, g);
            keys.insert(g, self.ksw_key(&s_g, rng));
        }
        GaloisKeys { keys }
    }

    /// Galois elements for the left row-rotations `1..steps` (each
    /// `3^s mod 2n`, the generator [`crate::Evaluator::rotate_rows`] looks
    /// up). Rotation 0 is the identity and needs no key.
    pub fn galois_elements_for_rotations(&self, steps: usize) -> Vec<usize> {
        let two_n = 2 * self.ctx.params().n;
        let mut elems = Vec::with_capacity(steps.saturating_sub(1));
        let mut g = 1usize;
        for _ in 1..steps {
            g = g * 3 % two_n;
            elems.push(g);
        }
        elems
    }

    /// Galois elements needed for all power-of-two row rotations plus the
    /// column swap, mirroring SEAL's default key set.
    pub fn default_galois_elements(&self) -> Vec<usize> {
        let n = self.ctx.params().n;
        let two_n = 2 * n;
        let mut elems = Vec::new();
        let mut g = 3usize;
        let mut step = 1usize;
        while step < n / 2 {
            elems.push(g);
            // 3^(2*step) for the next power-of-two rotation
            g = (g * g) % two_n;
            step *= 2;
        }
        elems.push(two_n - 1); // column swap
        elems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BfvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn public_key_decrypts_to_small_error() {
        // pk0 + pk1 * s = -e, which must be small.
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(42);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        let rq = ctx.rq();
        let v = rq.add(&pk.pk0, &rq.mul(&pk.pk1, &kg.secret_key().s));
        assert!(rq.inf_norm(&v) < (8.0 * ctx.params().sigma) as u64 + 1);
    }

    #[test]
    fn ksw_key_levels_match_decomposition() {
        let ctx = BfvContext::new(BfvParams::insecure_test_mul());
        let mut rng = StdRng::seed_from_u64(1);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let rk = kg.relin_key(&mut rng);
        assert_eq!(rk.ksw.levels.len(), ctx.params().decomp_levels());
    }

    #[test]
    fn galois_keys_reject_even_elements() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(1);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            kg.galois_keys(&[2], &mut rng)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn default_galois_elements_are_odd_and_nonempty() {
        let ctx = BfvContext::new(BfvParams::insecure_test_batch());
        let mut rng = StdRng::seed_from_u64(1);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let elems = kg.default_galois_elements();
        assert!(!elems.is_empty());
        assert!(elems.iter().all(|g| g % 2 == 1));
        assert!(elems.contains(&(2 * ctx.params().n - 1)));
    }
}
