//! Encryption, decryption and homomorphic evaluation.
//!
//! `Hom-Add` is coefficient-wise addition of ciphertext components (paper
//! Eq. 4) — the only operation CIPHERMATCH needs. Multiplication (used by
//! the arithmetic baseline) computes the exact integer tensor product and
//! scales by `t/q`; relinearization and Galois rotation use gadget-
//! decomposed key switching.

use cm_hemath::{gaussian_poly, ternary_poly, Poly};
use rand::Rng;

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::keys::{GaloisKeys, KeySwitchKey, PublicKey, RelinKey, SecretKey};
use crate::params::BfvContext;

/// Encrypts plaintexts under a public key.
#[derive(Debug)]
pub struct Encryptor<'a> {
    ctx: &'a BfvContext,
    pk: PublicKey,
}

impl<'a> Encryptor<'a> {
    /// Creates an encryptor.
    pub fn new(ctx: &'a BfvContext, pk: PublicKey) -> Self {
        Self { ctx, pk }
    }

    /// Encrypts a plaintext: `(pk0 u + e1 + Δ m, pk1 u + e2)` (paper
    /// Eq. 1–3 with the standard Δ-scaling of the message).
    ///
    /// # Panics
    ///
    /// Panics if the plaintext degree does not match the ring, or a
    /// coefficient is not reduced mod `t`.
    pub fn encrypt<R: Rng + ?Sized>(&self, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        let rq = self.ctx.rq();
        let params = self.ctx.params();
        assert_eq!(pt.poly().len(), params.n, "plaintext degree mismatch");
        assert!(
            pt.coeffs().iter().all(|&c| c < params.t),
            "plaintext coefficients must be reduced mod t"
        );
        let u = ternary_poly(rq, rng);
        let e1 = gaussian_poly(rq, params.sigma, rng);
        let e2 = gaussian_poly(rq, params.sigma, rng);
        let scaled = rq.scalar_mul(pt.poly(), params.delta());
        let c0 = rq.add(&rq.add(&rq.mul(&self.pk.pk0, &u), &e1), &scaled);
        let c1 = rq.add(&rq.mul(&self.pk.pk1, &u), &e2);
        Ciphertext::from_parts(vec![c0, c1])
    }

    /// Encrypts the zero plaintext (useful for padding and benchmarks).
    pub fn encrypt_zero<R: Rng + ?Sized>(&self, rng: &mut R) -> Ciphertext {
        self.encrypt(&Plaintext::zero(self.ctx.params().n), rng)
    }
}

/// Secret-key encryption: `(-(a s + e) + Δ m, a)`.
///
/// Symmetric ciphertexts are fresh-noise like public-key ones but cheaper
/// to produce and to transmit seeds for; a CIPHERMATCH client holding the
/// secret key can use this for its query variants (the part of Algorithm 1
/// that travels per query).
#[derive(Debug)]
pub struct SymmetricEncryptor<'a> {
    ctx: &'a BfvContext,
    sk: SecretKey,
}

impl<'a> SymmetricEncryptor<'a> {
    /// Creates a symmetric encryptor.
    pub fn new(ctx: &'a BfvContext, sk: SecretKey) -> Self {
        Self { ctx, sk }
    }

    /// Encrypts a plaintext under the secret key.
    ///
    /// # Panics
    ///
    /// Panics if the plaintext degree does not match the ring or a
    /// coefficient is not reduced mod `t`.
    pub fn encrypt<R: Rng + ?Sized>(&self, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        let a = cm_hemath::uniform_poly(self.ctx.rq(), rng);
        self.encrypt_with_mask(pt, a, rng)
    }

    /// Encrypts with the mask polynomial `a` regenerable from a 64-bit
    /// seed, returning a [`SeededCiphertext`] that transmits at half size
    /// (only `c0` plus the seed travel). This is the standard
    /// seed-compression trick for the query-upload half of Algorithm 1.
    pub fn encrypt_seeded<R: Rng + ?Sized>(
        &self,
        pt: &Plaintext,
        seed: u64,
        rng: &mut R,
    ) -> SeededCiphertext {
        use rand::SeedableRng;
        let a =
            cm_hemath::uniform_poly(self.ctx.rq(), &mut rand::rngs::StdRng::seed_from_u64(seed));
        let ct = self.encrypt_with_mask(pt, a, rng);
        SeededCiphertext {
            c0: ct.part(0).clone(),
            seed,
        }
    }

    fn encrypt_with_mask<R: Rng + ?Sized>(
        &self,
        pt: &Plaintext,
        a: Poly,
        rng: &mut R,
    ) -> Ciphertext {
        let rq = self.ctx.rq();
        let params = self.ctx.params();
        assert_eq!(pt.poly().len(), params.n, "plaintext degree mismatch");
        assert!(
            pt.coeffs().iter().all(|&c| c < params.t),
            "plaintext coefficients must be reduced mod t"
        );
        let e = gaussian_poly(rq, params.sigma, rng);
        let scaled = rq.scalar_mul(pt.poly(), params.delta());
        let c0 = rq.add(&rq.neg(&rq.add(&rq.mul(&a, &self.sk.s), &e)), &scaled);
        Ciphertext::from_parts(vec![c0, a])
    }
}

/// A symmetric ciphertext with its mask compressed to a seed: transmits
/// `n` coefficients plus 8 bytes instead of `2n` coefficients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededCiphertext {
    c0: Poly,
    seed: u64,
}

impl SeededCiphertext {
    /// Re-expands the full two-polynomial ciphertext by regenerating the
    /// mask from the seed.
    pub fn expand(&self, ctx: &BfvContext) -> Ciphertext {
        use rand::SeedableRng;
        let a =
            cm_hemath::uniform_poly(ctx.rq(), &mut rand::rngs::StdRng::seed_from_u64(self.seed));
        Ciphertext::from_parts(vec![self.c0.clone(), a])
    }

    /// Transmitted size in bytes (one polynomial + the seed).
    pub fn byte_size(&self, q_bits: u32) -> usize {
        self.c0.len() * q_bits.div_ceil(8) as usize + 8
    }
}

/// Decrypts ciphertexts and measures noise budgets.
#[derive(Debug)]
pub struct Decryptor<'a> {
    ctx: &'a BfvContext,
    sk: SecretKey,
}

/// Rounds `a / b` to the nearest integer (half away from zero-ish: half up),
/// correct for negative `a` and positive `b`.
#[inline]
fn div_round(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    (a + b / 2).div_euclid(b)
}

impl<'a> Decryptor<'a> {
    /// Creates a decryptor.
    pub fn new(ctx: &'a BfvContext, sk: SecretKey) -> Self {
        Self { ctx, sk }
    }

    /// Computes `v = c0 + c1 s + c2 s^2 + ...` in `R_q`.
    fn inner_product(&self, ct: &Ciphertext) -> Poly {
        let parts: Vec<&[u64]> = ct.parts().iter().map(|p| p.coeffs()).collect();
        self.inner_product_slices(&parts)
    }

    /// [`Self::inner_product`] over borrowed coefficient slices, so
    /// flat-arena callers (e.g. a search-result sweep) decrypt without
    /// materializing a [`Ciphertext`] per entry.
    fn inner_product_slices(&self, parts: &[&[u64]]) -> Poly {
        let rq = self.ctx.rq();
        let mut acc = Poly::from_coeffs(parts[0].to_vec());
        let mut s_pow = self.sk.s.clone();
        for (i, part) in parts.iter().enumerate().skip(1) {
            let prod = Poly::from_coeffs(rq.mul_slices(part, s_pow.coeffs()));
            rq.add_assign(&mut acc, &prod);
            if i + 1 < parts.len() {
                s_pow = rq.mul(&s_pow, &self.sk.s);
            }
        }
        acc
    }

    /// Rounds `v` to the plaintext ring: `m = round(t v / q) mod t`.
    fn round_to_plaintext(&self, v: &Poly) -> Plaintext {
        let params = self.ctx.params();
        let q = params.q as i128;
        let t = params.t as i128;
        let m = self.ctx.rq().modulus();
        let coeffs = v
            .coeffs()
            .iter()
            .map(|&c| {
                let x = m.center(c) as i128;
                let y = div_round(t * x, q).rem_euclid(t);
                y as u64
            })
            .collect();
        Plaintext::from_poly(Poly::from_coeffs(coeffs))
    }

    /// Decrypts a ciphertext of any size: `m = round(t v / q) mod t`.
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        self.round_to_plaintext(&self.inner_product(ct))
    }

    /// Decrypts a ciphertext given as borrowed coefficient slices, one
    /// per component — the arena-friendly twin of [`Self::decrypt`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than two components are given or a slice length
    /// differs from the ring degree.
    pub fn decrypt_slices(&self, parts: &[&[u64]]) -> Plaintext {
        assert!(parts.len() >= 2, "a ciphertext has at least two parts");
        self.round_to_plaintext(&self.inner_product_slices(parts))
    }

    /// Invariant-noise budget in bits, à la SEAL: bits of headroom between
    /// the current noise and the decryption-failure threshold. Zero means
    /// decryption is no longer guaranteed.
    pub fn invariant_noise_budget(&self, ct: &Ciphertext) -> f64 {
        let params = self.ctx.params();
        let rq = self.ctx.rq();
        let v = self.inner_product(ct);
        let m = self.decrypt(ct);
        // w = v - Δ m, centered: the absolute noise.
        let scaled = rq.scalar_mul(m.poly(), params.delta());
        let w = rq.sub(&v, &scaled);
        let noise = rq.inf_norm(&w).max(1);
        let threshold = (params.delta() / 2).max(1);
        ((threshold as f64).log2() - (noise as f64).log2()).max(0.0)
    }
}

/// Homomorphic evaluation over ciphertexts.
#[derive(Debug, Clone)]
pub struct Evaluator {
    ctx: BfvContext,
}

impl Evaluator {
    /// Creates an evaluator for a context.
    pub fn new(ctx: &BfvContext) -> Self {
        Self { ctx: ctx.clone() }
    }

    /// Homomorphic addition (paper Eq. 4): component-wise sum. Operands of
    /// different sizes are zero-padded.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let rq = self.ctx.rq();
        let size = a.size().max(b.size());
        let n = self.ctx.params().n;
        let zero = Poly::zero(n);
        let parts = (0..size)
            .map(|i| {
                let pa = if i < a.size() { a.part(i) } else { &zero };
                let pb = if i < b.size() { b.part(i) } else { &zero };
                rq.add(pa, pb)
            })
            .collect();
        Ciphertext::from_parts(parts)
    }

    /// In-place homomorphic addition of same-size ciphertexts (the hot path
    /// of CIPHERMATCH's server loop).
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    pub fn add_assign(&self, a: &mut Ciphertext, b: &Ciphertext) {
        assert_eq!(a.size(), b.size(), "in-place add requires equal sizes");
        let rq = self.ctx.rq();
        for (pa, pb) in a.parts_mut().iter_mut().zip(b.parts()) {
            rq.add_assign(pa, pb);
        }
    }

    /// Homomorphic addition into a caller-owned flat buffer: writes
    /// `a + b` component-major into `out` (`out[p*n..(p+1)*n]` is
    /// component `p`), zero-padding the smaller operand. The
    /// allocation-free twin of [`Self::add`] for sweeps that reuse one
    /// coefficient arena across the whole database.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != max(a.size(), b.size()) * n`.
    pub fn add_into(&self, a: &Ciphertext, b: &Ciphertext, out: &mut [u64]) {
        let rq = self.ctx.rq();
        let n = self.ctx.params().n;
        let size = a.size().max(b.size());
        assert_eq!(out.len(), size * n, "output buffer size mismatch");
        for (i, slot) in out.chunks_exact_mut(n).enumerate() {
            match (i < a.size(), i < b.size()) {
                (true, true) => cm_hemath::kernels::add_slices(
                    rq.modulus(),
                    a.part(i).coeffs(),
                    b.part(i).coeffs(),
                    slot,
                ),
                (true, false) => slot.copy_from_slice(a.part(i).coeffs()),
                (false, _) => slot.copy_from_slice(b.part(i).coeffs()),
            }
        }
    }

    /// Homomorphic subtraction.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.add(a, &self.negate(b))
    }

    /// Homomorphic negation.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        let rq = self.ctx.rq();
        Ciphertext::from_parts(a.parts().iter().map(|p| rq.neg(p)).collect())
    }

    /// Sums many ciphertexts by accumulating in place into one clone of
    /// the first — linear in the total coefficient count, where a naive
    /// `fold` over [`Self::add`] re-allocates a full ciphertext per
    /// step. A rare size mismatch falls back to the padding add.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty.
    pub fn add_many<'c>(&self, cts: impl IntoIterator<Item = &'c Ciphertext>) -> Ciphertext {
        let mut iter = cts.into_iter();
        let mut acc = iter
            .next()
            .expect("add_many requires at least one ciphertext")
            .clone();
        for ct in iter {
            if ct.size() == acc.size() {
                self.add_assign(&mut acc, ct);
            } else {
                acc = self.add(&acc, ct);
            }
        }
        acc
    }

    /// Adds a plaintext: `c0 += Δ m`.
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let rq = self.ctx.rq();
        let scaled = rq.scalar_mul(pt.poly(), self.ctx.params().delta());
        let mut parts = a.parts().to_vec();
        parts[0] = rq.add(&parts[0], &scaled);
        Ciphertext::from_parts(parts)
    }

    /// Subtracts a plaintext: `c0 -= Δ m`.
    pub fn sub_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let rq = self.ctx.rq();
        let scaled = rq.scalar_mul(pt.poly(), self.ctx.params().delta());
        let mut parts = a.parts().to_vec();
        parts[0] = rq.sub(&parts[0], &scaled);
        Ciphertext::from_parts(parts)
    }

    /// Multiplies by a small signed integer scalar (coefficient-wise).
    ///
    /// Homomorphically scales the message by `s mod t` while growing noise
    /// only by `|s|` — much cheaper than [`Self::mul_plain`] with a
    /// constant polynomial, whose noise grows with the encoded constant.
    pub fn scale_signed(&self, a: &Ciphertext, s: i64) -> Ciphertext {
        let rq = self.ctx.rq();
        let c = rq.modulus().from_signed(s);
        Ciphertext::from_parts(a.parts().iter().map(|p| rq.scalar_mul(p, c)).collect())
    }

    /// Multiplies by a plaintext polynomial (each component times `m` in
    /// `R_q`).
    pub fn mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let rq = self.ctx.rq();
        assert!(
            !pt.poly().is_zero(),
            "transparent result: multiplying by the zero plaintext"
        );
        Ciphertext::from_parts(a.parts().iter().map(|p| rq.mul(p, pt.poly())).collect())
    }

    /// Ciphertext-ciphertext multiplication producing a size-3 ciphertext.
    ///
    /// Computes the exact integer tensor `(c0 d0, c0 d1 + c1 d0, c1 d1)`
    /// over `Z[x]/(x^n+1)` and scales each coefficient by `t/q` with exact
    /// rounding.
    ///
    /// # Panics
    ///
    /// Panics if either operand has size ≠ 2 (relinearize first).
    pub fn multiply(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert!(
            a.size() == 2 && b.size() == 2,
            "multiply expects size-2 inputs"
        );
        let rq = self.ctx.rq();
        let wide = self.ctx.wide();
        let c0 = rq.to_centered(a.part(0));
        let c1 = rq.to_centered(a.part(1));
        let d0 = rq.to_centered(b.part(0));
        let d1 = rq.to_centered(b.part(1));

        let e0 = wide.mul(&c0, &d0);
        let mut e1 = wide.mul(&c0, &d1);
        for (x, y) in e1.iter_mut().zip(wide.mul(&c1, &d0)) {
            *x += y;
        }
        let e2 = wide.mul(&c1, &d1);

        let q = self.ctx.params().q as i128;
        let t = self.ctx.params().t as i128;
        let m = rq.modulus();
        let scale = |v: Vec<i128>| -> Poly {
            let coeffs = v
                .into_iter()
                .map(|x| {
                    // round(t x / q) without overflowing i128: split x = q h + r.
                    let h = x.div_euclid(q);
                    let r = x.rem_euclid(q);
                    let y = t * h + div_round(t * r, q);
                    m.from_signed_i128(y)
                })
                .collect();
            Poly::from_coeffs(coeffs)
        };
        Ciphertext::from_parts(vec![scale(e0), scale(e1), scale(e2)])
    }

    /// Digit-decomposes a polynomial in base `2^decomp_log2`.
    fn decompose(&self, p: &Poly) -> Vec<Poly> {
        let params = self.ctx.params();
        let w_log = params.decomp_log2;
        let mask = (1u64 << w_log) - 1;
        (0..params.decomp_levels())
            .map(|i| {
                Poly::from_coeffs(
                    p.coeffs()
                        .iter()
                        .map(|&c| (c >> (i as u32 * w_log)) & mask)
                        .collect(),
                )
            })
            .collect()
    }

    /// Applies a key-switching key to a single polynomial, returning the
    /// `(sum d_i k0_i, sum d_i k1_i)` pair.
    fn key_switch(&self, p: &Poly, ksw: &KeySwitchKey) -> (Poly, Poly) {
        let rq = self.ctx.rq();
        let n = self.ctx.params().n;
        let mut acc0 = Poly::zero(n);
        let mut acc1 = Poly::zero(n);
        for (digit, level) in self.decompose(p).iter().zip(&ksw.levels) {
            rq.add_assign(&mut acc0, &rq.mul(digit, &level.k0));
            rq.add_assign(&mut acc1, &rq.mul(digit, &level.k1));
        }
        (acc0, acc1)
    }

    /// Relinearizes a size-3 ciphertext back to size 2.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext size is not 3.
    pub fn relinearize(&self, ct: &Ciphertext, rk: &RelinKey) -> Ciphertext {
        assert_eq!(ct.size(), 3, "relinearize expects a size-3 ciphertext");
        let rq = self.ctx.rq();
        let (k0, k1) = self.key_switch(ct.part(2), &rk.ksw);
        Ciphertext::from_parts(vec![rq.add(ct.part(0), &k0), rq.add(ct.part(1), &k1)])
    }

    /// Applies the Galois automorphism `x -> x^g` homomorphically.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext size is not 2 or the key set lacks `g`.
    pub fn apply_galois(&self, ct: &Ciphertext, g: usize, gk: &GaloisKeys) -> Ciphertext {
        assert_eq!(ct.size(), 2, "apply_galois expects a size-2 ciphertext");
        let ksw = gk
            .keys
            .get(&g)
            .unwrap_or_else(|| panic!("no Galois key for element {g}"));
        let rq = self.ctx.rq();
        let c0g = rq.automorphism(ct.part(0), g);
        let c1g = rq.automorphism(ct.part(1), g);
        let (k0, k1) = self.key_switch(&c1g, ksw);
        Ciphertext::from_parts(vec![rq.add(&c0g, &k0), k1])
    }

    /// Rotates batched rows by `steps` (positive = left), producing the
    /// Galois element `3^steps mod 2n` (or its inverse power for negative
    /// steps).
    pub fn rotate_rows(&self, ct: &Ciphertext, steps: i64, gk: &GaloisKeys) -> Ciphertext {
        let n = self.ctx.params().n;
        let half = (n / 2) as i64;
        let s = steps.rem_euclid(half) as u64;
        if s == 0 {
            return ct.clone();
        }
        let two_n = 2 * n as u64;
        let mut g = 1u64;
        for _ in 0..s {
            g = g * 3 % two_n;
        }
        self.apply_galois(ct, g as usize, gk)
    }

    /// Swaps the two batched rows (Galois element `2n - 1`).
    pub fn rotate_columns(&self, ct: &Ciphertext, gk: &GaloisKeys) -> Ciphertext {
        self.apply_galois(ct, 2 * self.ctx.params().n - 1, gk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::{BfvContext, BfvParams};
    use cm_hemath::Poly;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(params: BfvParams, seed: u64) -> (BfvContext, SecretKey, PublicKey) {
        let ctx = BfvContext::new(params);
        let mut rng = StdRng::seed_from_u64(seed);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        (ctx, sk, pk)
    }

    fn pt_from(ctx: &BfvContext, values: &[u64]) -> Plaintext {
        let mut coeffs = vec![0u64; ctx.params().n];
        for (c, &v) in coeffs.iter_mut().zip(values) {
            *c = v % ctx.params().t;
        }
        Plaintext::from_poly(Poly::from_coeffs(coeffs))
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ctx, sk, pk) = setup(BfvParams::insecure_test_add(), 7);
        let mut rng = StdRng::seed_from_u64(8);
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let pt = pt_from(&ctx, &[1, 2, 3, 250, 0, 99]);
        let ct = enc.encrypt(&pt, &mut rng);
        assert_eq!(dec.decrypt(&ct), pt);
        assert!(dec.invariant_noise_budget(&ct) > 1.0);
    }

    #[test]
    fn symmetric_and_public_ciphertexts_interoperate() {
        let (ctx, sk, pk) = setup(BfvParams::insecure_test_add(), 91);
        let mut rng = StdRng::seed_from_u64(92);
        let enc_pk = Encryptor::new(&ctx, pk);
        let enc_sk = SymmetricEncryptor::new(&ctx, sk.clone());
        let dec = Decryptor::new(&ctx, sk);
        let ev = Evaluator::new(&ctx);
        let a = enc_sk.encrypt(&pt_from(&ctx, &[30]), &mut rng);
        assert_eq!(dec.decrypt(&a).coeffs()[0], 30);
        assert!(dec.invariant_noise_budget(&a) > 2.0);
        // A symmetric query added to a public-key database ciphertext.
        let b = enc_pk.encrypt(&pt_from(&ctx, &[12]), &mut rng);
        assert_eq!(dec.decrypt(&ev.add(&a, &b)).coeffs()[0], 42);
    }

    #[test]
    fn seeded_ciphertexts_expand_and_decrypt() {
        let (ctx, sk, _pk) = setup(BfvParams::insecure_test_add(), 93);
        let mut rng = StdRng::seed_from_u64(94);
        let enc_sk = SymmetricEncryptor::new(&ctx, sk.clone());
        let dec = Decryptor::new(&ctx, sk);
        let seeded = enc_sk.encrypt_seeded(&pt_from(&ctx, &[7, 8, 9]), 0xBEEF, &mut rng);
        let full = seeded.expand(&ctx);
        assert_eq!(&dec.decrypt(&full).coeffs()[..3], &[7, 8, 9]);
        // Transmitted size is half the full ciphertext (plus the seed).
        assert_eq!(seeded.byte_size(32), full.byte_size(32) / 2 + 8);
        // Expansion is deterministic.
        assert_eq!(seeded.expand(&ctx), full);
    }

    #[test]
    fn hom_add_is_plaintext_add() {
        let (ctx, sk, pk) = setup(BfvParams::insecure_test_add(), 11);
        let mut rng = StdRng::seed_from_u64(12);
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let ev = Evaluator::new(&ctx);
        let a = pt_from(&ctx, &[10, 200, 30]);
        let b = pt_from(&ctx, &[100, 100, 250]);
        let ct = ev.add(&enc.encrypt(&a, &mut rng), &enc.encrypt(&b, &mut rng));
        let sum = dec.decrypt(&ct);
        let t = ctx.params().t;
        assert_eq!(sum.coeffs()[0], 110);
        assert_eq!(sum.coeffs()[1], (200 + 100) % t);
        assert_eq!(sum.coeffs()[2], (30 + 250) % t);
    }

    #[test]
    fn add_assign_matches_add() {
        let (ctx, _sk, pk) = setup(BfvParams::insecure_test_add(), 13);
        let mut rng = StdRng::seed_from_u64(14);
        let enc = Encryptor::new(&ctx, pk);
        let ev = Evaluator::new(&ctx);
        let a = enc.encrypt(&pt_from(&ctx, &[5, 6]), &mut rng);
        let b = enc.encrypt(&pt_from(&ctx, &[7, 8]), &mut rng);
        let mut c = a.clone();
        ev.add_assign(&mut c, &b);
        assert_eq!(c, ev.add(&a, &b));
    }

    #[test]
    fn add_many_sums_a_hundred_ciphertexts() {
        let (ctx, sk, pk) = setup(BfvParams::ciphermatch_1024(), 113);
        let mut rng = StdRng::seed_from_u64(114);
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let ev = Evaluator::new(&ctx);
        let count = 120u64;
        let cts: Vec<Ciphertext> = (0..count)
            .map(|i| enc.encrypt(&pt_from(&ctx, &[i, 2 * i]), &mut rng))
            .collect();
        let sum = ev.add_many(&cts);
        assert_eq!(sum.size(), 2, "equal-size inputs accumulate in place");
        let got = dec.decrypt(&sum);
        let t = ctx.params().t;
        assert_eq!(got.coeffs()[0], (0..count).sum::<u64>() % t);
        assert_eq!(got.coeffs()[1], (0..count).map(|i| 2 * i).sum::<u64>() % t);
        // The in-place accumulation is exactly the fold it replaced.
        let folded = cts[1..]
            .iter()
            .fold(cts[0].clone(), |acc, ct| ev.add(&acc, ct));
        assert_eq!(sum, folded);
    }

    #[test]
    fn add_into_matches_add() {
        let (ctx, _sk, pk) = setup(BfvParams::insecure_test_add(), 115);
        let mut rng = StdRng::seed_from_u64(116);
        let enc = Encryptor::new(&ctx, pk);
        let ev = Evaluator::new(&ctx);
        let n = ctx.params().n;
        let a = enc.encrypt(&pt_from(&ctx, &[5, 6]), &mut rng);
        let b = enc.encrypt(&pt_from(&ctx, &[7, 8]), &mut rng);
        let mut arena = vec![0u64; 2 * n];
        ev.add_into(&a, &b, &mut arena);
        let want = ev.add(&a, &b);
        assert_eq!(&arena[..n], want.part(0).coeffs());
        assert_eq!(&arena[n..], want.part(1).coeffs());
    }

    #[test]
    fn decrypt_slices_matches_decrypt() {
        let (ctx, sk, pk) = setup(BfvParams::insecure_test_add(), 117);
        let mut rng = StdRng::seed_from_u64(118);
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let ct = enc.encrypt(&pt_from(&ctx, &[1, 2, 3]), &mut rng);
        let parts: Vec<&[u64]> = ct.parts().iter().map(|p| p.coeffs()).collect();
        assert_eq!(dec.decrypt_slices(&parts), dec.decrypt(&ct));
    }

    #[test]
    fn sub_and_negate() {
        let (ctx, sk, pk) = setup(BfvParams::insecure_test_add(), 15);
        let mut rng = StdRng::seed_from_u64(16);
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let ev = Evaluator::new(&ctx);
        let a = enc.encrypt(&pt_from(&ctx, &[50]), &mut rng);
        let b = enc.encrypt(&pt_from(&ctx, &[20]), &mut rng);
        assert_eq!(dec.decrypt(&ev.sub(&a, &b)).coeffs()[0], 30);
        let t = ctx.params().t;
        assert_eq!(dec.decrypt(&ev.negate(&a)).coeffs()[0], t - 50);
    }

    #[test]
    fn plain_operations() {
        let (ctx, sk, pk) = setup(BfvParams::insecure_test_add(), 17);
        let mut rng = StdRng::seed_from_u64(18);
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let ev = Evaluator::new(&ctx);
        let ct = enc.encrypt(&pt_from(&ctx, &[40]), &mut rng);
        assert_eq!(
            dec.decrypt(&ev.add_plain(&ct, &pt_from(&ctx, &[2])))
                .coeffs()[0],
            42
        );
        assert_eq!(
            dec.decrypt(&ev.sub_plain(&ct, &pt_from(&ctx, &[2])))
                .coeffs()[0],
            38
        );
        assert_eq!(
            dec.decrypt(&ev.mul_plain(&ct, &pt_from(&ctx, &[3])))
                .coeffs()[0],
            120
        );
    }

    #[test]
    fn multiply_and_relinearize() {
        let (ctx, sk, pk) = setup(BfvParams::insecure_test_mul(), 19);
        let mut rng = StdRng::seed_from_u64(20);
        let kg = KeyGenerator::from_secret(&ctx, sk.clone());
        let rk = kg.relin_key(&mut rng);
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let ev = Evaluator::new(&ctx);
        let a = enc.encrypt(&pt_from(&ctx, &[7]), &mut rng);
        let b = enc.encrypt(&pt_from(&ctx, &[9]), &mut rng);
        let prod3 = ev.multiply(&a, &b);
        assert_eq!(prod3.size(), 3);
        // Size-3 decryption works pre-relinearization.
        assert_eq!(dec.decrypt(&prod3).coeffs()[0], 63);
        let prod2 = ev.relinearize(&prod3, &rk);
        assert_eq!(prod2.size(), 2);
        assert_eq!(dec.decrypt(&prod2).coeffs()[0], 63);
        assert!(dec.invariant_noise_budget(&prod2) > 0.5);
    }

    #[test]
    fn multiply_polynomials_convolve() {
        // (1 + 2x) * (3 + x) = 3 + 7x + 2x^2 in the plaintext ring.
        let (ctx, sk, pk) = setup(BfvParams::insecure_test_mul(), 21);
        let mut rng = StdRng::seed_from_u64(22);
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let ev = Evaluator::new(&ctx);
        let a = enc.encrypt(&pt_from(&ctx, &[1, 2]), &mut rng);
        let b = enc.encrypt(&pt_from(&ctx, &[3, 1]), &mut rng);
        let got = dec.decrypt(&ev.multiply(&a, &b));
        assert_eq!(&got.coeffs()[..3], &[3, 7, 2]);
    }

    #[test]
    fn hom_add_noise_grows_additively() {
        let (ctx, sk, pk) = setup(BfvParams::ciphermatch_1024(), 23);
        let mut rng = StdRng::seed_from_u64(24);
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let ev = Evaluator::new(&ctx);
        let ct = enc.encrypt(&pt_from(&ctx, &[1234, 65535]), &mut rng);
        let fresh = dec.invariant_noise_budget(&ct);
        let sum = ev.add(&ct, &ct);
        let after = dec.invariant_noise_budget(&sum);
        assert!(fresh > 2.0, "fresh budget too small: {fresh}");
        assert!(
            after >= fresh - 1.5,
            "one addition must cost at most ~1 bit"
        );
    }

    #[test]
    fn galois_rotation_of_coefficients() {
        let (ctx, sk, pk) = setup(BfvParams::insecure_test_mul(), 25);
        let mut rng = StdRng::seed_from_u64(26);
        let kg = KeyGenerator::from_secret(&ctx, sk.clone());
        let gk = kg.galois_keys(&[3], &mut rng);
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let ev = Evaluator::new(&ctx);
        let pt = pt_from(&ctx, &[0, 1]); // m = x
        let ct = enc.encrypt(&pt, &mut rng);
        let rotated = ev.apply_galois(&ct, 3, &gk);
        // sigma_3(x) = x^3.
        let got = dec.decrypt(&rotated);
        assert_eq!(got.coeffs()[3], 1);
        assert!(got
            .coeffs()
            .iter()
            .enumerate()
            .all(|(i, &c)| i == 3 || c == 0));
    }
}
