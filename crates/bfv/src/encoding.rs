//! Plaintext encoders.
//!
//! [`CoefficientEncoder`] places packed values directly into polynomial
//! coefficients — the layout CIPHERMATCH's dense packing uses.
//! [`BatchEncoder`] provides BFV SIMD batching (`t` prime, `t ≡ 1 mod 2n`):
//! `n` plaintext slots with rotation semantics, as used by the
//! SIMD-batched baselines in Table 1 (Aziz \[17\], Bonte \[29\]).

use cm_hemath::{bit_reverse, Modulus, NttTable, Poly};

use crate::ciphertext::Plaintext;
use crate::params::BfvContext;

/// Encodes value vectors directly as polynomial coefficients.
#[derive(Debug, Clone)]
pub struct CoefficientEncoder {
    n: usize,
    t: u64,
}

impl CoefficientEncoder {
    /// Creates a coefficient encoder for the context.
    pub fn new(ctx: &BfvContext) -> Self {
        Self {
            n: ctx.params().n,
            t: ctx.params().t,
        }
    }

    /// Encodes up to `n` values (each reduced mod `t`) as coefficients;
    /// remaining coefficients are zero.
    ///
    /// # Panics
    ///
    /// Panics if more than `n` values are supplied.
    pub fn encode(&self, values: &[u64]) -> Plaintext {
        assert!(values.len() <= self.n, "too many values for ring degree");
        let mut coeffs = vec![0u64; self.n];
        for (c, &v) in coeffs.iter_mut().zip(values) {
            *c = v % self.t;
        }
        Plaintext::from_poly(Poly::from_coeffs(coeffs))
    }

    /// Reads back the coefficients.
    pub fn decode(&self, pt: &Plaintext) -> Vec<u64> {
        pt.coeffs().to_vec()
    }
}

/// SIMD batching encoder: `n` slots arranged as a `2 x n/2` matrix with
/// row-rotation and column-swap Galois semantics.
#[derive(Debug, Clone)]
pub struct BatchEncoder {
    n: usize,
    t: Modulus,
    ntt: NttTable,
    /// slot index -> coefficient-domain NTT position.
    index_map: Vec<usize>,
}

impl BatchEncoder {
    /// Builds a batching encoder.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a prime with `t ≡ 1 (mod 2n)` (batching
    /// impossible).
    pub fn new(ctx: &BfvContext) -> Self {
        let n = ctx.params().n;
        let t = ctx.params().t;
        assert!(
            cm_hemath::is_prime(t) && (t - 1).is_multiple_of(2 * n as u64),
            "batching requires a prime t with t = 1 mod 2n (use batching params)"
        );
        let modulus = Modulus::new(t);
        let ntt = NttTable::new(modulus, n);
        // SEAL-style matrix representation index map: slot i sits at the
        // evaluation point psi^(3^i), its row-2 partner at psi^(-3^i).
        let logn = n.trailing_zeros();
        let m = 2 * n;
        let mut index_map = vec![0usize; n];
        let mut pos = 1usize;
        for i in 0..n / 2 {
            let idx1 = (pos - 1) / 2;
            let idx2 = (m - pos - 1) / 2;
            index_map[i] = bit_reverse(idx1, logn);
            index_map[n / 2 + i] = bit_reverse(idx2, logn);
            pos = pos * 3 % m;
        }
        Self {
            n,
            t: modulus,
            ntt,
            index_map,
        }
    }

    /// Number of slots (equals `n`).
    pub fn slot_count(&self) -> usize {
        self.n
    }

    /// Encodes up to `n` slot values into a plaintext.
    ///
    /// # Panics
    ///
    /// Panics if more than `n` values are supplied.
    pub fn encode(&self, values: &[u64]) -> Plaintext {
        assert!(values.len() <= self.n, "too many values for slot count");
        let mut buf = vec![0u64; self.n];
        for (i, &v) in values.iter().enumerate() {
            buf[self.index_map[i]] = self.t.reduce(v);
        }
        self.ntt.inverse(&mut buf);
        Plaintext::from_poly(Poly::from_coeffs(buf))
    }

    /// Decodes a plaintext back into its `n` slot values.
    pub fn decode(&self, pt: &Plaintext) -> Vec<u64> {
        let mut buf = pt.coeffs().to_vec();
        self.ntt.forward(&mut buf);
        (0..self.n).map(|i| buf[self.index_map[i]]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{BfvContext, BfvParams};

    #[test]
    fn coefficient_encoder_roundtrip() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let enc = CoefficientEncoder::new(&ctx);
        let values: Vec<u64> = (0..100).collect();
        let pt = enc.encode(&values);
        assert_eq!(&enc.decode(&pt)[..100], &values[..]);
    }

    #[test]
    fn batch_encoder_roundtrip() {
        let ctx = BfvContext::new(BfvParams::insecure_test_batch());
        let enc = BatchEncoder::new(&ctx);
        let values: Vec<u64> = (0..enc.slot_count() as u64)
            .map(|i| i * 31 % 7681)
            .collect();
        let pt = enc.encode(&values);
        assert_eq!(enc.decode(&pt), values);
    }

    #[test]
    fn batch_encode_is_not_identity() {
        let ctx = BfvContext::new(BfvParams::insecure_test_batch());
        let enc = BatchEncoder::new(&ctx);
        let values: Vec<u64> = (1..=4).collect();
        let pt = enc.encode(&values);
        assert_ne!(&pt.coeffs()[..4], &values[..]);
    }

    #[test]
    fn batched_plaintext_addition_is_slotwise() {
        // Adding two encoded plaintexts coefficient-wise adds the slots.
        let ctx = BfvContext::new(BfvParams::insecure_test_batch());
        let enc = BatchEncoder::new(&ctx);
        let a: Vec<u64> = (0..256).map(|i| i * 3).collect();
        let b: Vec<u64> = (0..256).map(|i| i + 17).collect();
        let pa = enc.encode(&a);
        let pb = enc.encode(&b);
        let t = Modulus::new(ctx.params().t);
        let sum = Plaintext::from_poly(Poly::from_coeffs(
            pa.coeffs()
                .iter()
                .zip(pb.coeffs())
                .map(|(&x, &y)| t.add(x, y))
                .collect(),
        ));
        let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| (x + y) % 7681).collect();
        assert_eq!(enc.decode(&sum), expect);
    }

    #[test]
    #[should_panic(expected = "batching requires")]
    fn batch_encoder_rejects_power_of_two_t() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let _ = BatchEncoder::new(&ctx);
    }
}
