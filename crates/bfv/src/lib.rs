#![warn(missing_docs)]

//! # cm-bfv
//!
//! A from-scratch implementation of the Brakerski-Fan-Vercauteren (BFV)
//! somewhat-homomorphic encryption scheme, as used by CIPHERMATCH (§2.1 of
//! the paper): key generation, public-key encryption, decryption with noise
//! budget tracking, homomorphic addition (paper Eq. 4), ciphertext-
//! ciphertext multiplication with relinearization, Galois rotations, and
//! SIMD batching.
//!
//! CIPHERMATCH itself only needs `Hom-Add`; multiplication and rotation
//! exist to implement the paper's arithmetic baselines (Yasuda \[27\],
//! Kim \[34\], Bonte \[29\]) faithfully.
//!
//! ## Example
//!
//! ```
//! use cm_bfv::{BfvContext, BfvParams, CoefficientEncoder, Decryptor, Encryptor, Evaluator, KeyGenerator};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let ctx = BfvContext::new(BfvParams::insecure_test_add());
//! let mut rng = StdRng::seed_from_u64(1);
//! let keygen = KeyGenerator::new(&ctx, &mut rng);
//! let pk = keygen.public_key(&mut rng);
//! let enc = Encryptor::new(&ctx, pk);
//! let dec = Decryptor::new(&ctx, keygen.secret_key());
//! let ev = Evaluator::new(&ctx);
//! let coder = CoefficientEncoder::new(&ctx);
//!
//! let a = enc.encrypt(&coder.encode(&[17]), &mut rng);
//! let b = enc.encrypt(&coder.encode(&[25]), &mut rng);
//! let sum = ev.add(&a, &b);
//! assert_eq!(dec.decrypt(&sum).coeffs()[0], 42);
//! ```

mod ciphertext;
mod encoding;
mod keys;
mod ops;
mod params;
mod serialize;

pub use ciphertext::{Ciphertext, Plaintext};
pub use encoding::{BatchEncoder, CoefficientEncoder};
pub use keys::{GaloisKeys, KeyGenerator, KeySwitchKey, PublicKey, RelinKey, SecretKey};
pub use ops::{Decryptor, Encryptor, Evaluator, SeededCiphertext, SymmetricEncryptor};
pub use params::{BfvContext, BfvParams};
pub use serialize::{decode_ciphertext, encode_ciphertext, DecodeError};
