//! Plaintext and ciphertext containers.

use cm_hemath::Poly;

/// A BFV plaintext: a polynomial with coefficients in `[0, t)`.
///
/// Plaintexts are produced by the coefficient/batch encoders or built
/// directly from packed coefficients (see `cm-core`'s packing schemes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plaintext {
    poly: Poly,
}

impl Plaintext {
    /// Wraps a polynomial whose coefficients are already reduced mod `t`.
    pub fn from_poly(poly: Poly) -> Self {
        Self { poly }
    }

    /// The zero plaintext of degree `n`.
    pub fn zero(n: usize) -> Self {
        Self {
            poly: Poly::zero(n),
        }
    }

    /// Borrows the underlying polynomial.
    #[inline]
    pub fn poly(&self) -> &Poly {
        &self.poly
    }

    /// Mutably borrows the underlying polynomial.
    #[inline]
    pub fn poly_mut(&mut self) -> &mut Poly {
        &mut self.poly
    }

    /// Coefficient accessor, `[0, t)` values.
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        self.poly.coeffs()
    }
}

/// A BFV ciphertext: `k >= 2` polynomials in `R_q`.
///
/// Fresh encryptions have size 2; a ciphertext-ciphertext multiplication
/// produces size 3 until relinearized. Decryption accepts any size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext {
    parts: Vec<Poly>,
}

impl Ciphertext {
    /// Builds a ciphertext from its component polynomials.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two components are supplied.
    pub fn from_parts(parts: Vec<Poly>) -> Self {
        assert!(parts.len() >= 2, "a ciphertext has at least two components");
        Self { parts }
    }

    /// Number of polynomial components (2 for fresh, 3 after multiply).
    #[inline]
    pub fn size(&self) -> usize {
        self.parts.len()
    }

    /// Borrows component `i`.
    #[inline]
    pub fn part(&self, i: usize) -> &Poly {
        &self.parts[i]
    }

    /// Borrows all components.
    #[inline]
    pub fn parts(&self) -> &[Poly] {
        &self.parts
    }

    /// Mutably borrows all components.
    #[inline]
    pub fn parts_mut(&mut self) -> &mut [Poly] {
        &mut self.parts
    }

    /// Consumes the ciphertext, returning its components.
    pub fn into_parts(self) -> Vec<Poly> {
        self.parts
    }

    /// Serialized size in bytes when coefficients are stored in
    /// `ceil(qbits/8)`-byte words — the footprint quantity used in the
    /// paper's memory comparisons (Fig. 2a).
    pub fn byte_size(&self, q_bits: u32) -> usize {
        let bytes = q_bits.div_ceil(8) as usize;
        self.parts.iter().map(|p| p.len() * bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ciphertext_size_and_bytes() {
        let n = 16;
        let ct = Ciphertext::from_parts(vec![Poly::zero(n), Poly::zero(n)]);
        assert_eq!(ct.size(), 2);
        assert_eq!(ct.byte_size(32), 2 * 16 * 4);
        assert_eq!(ct.byte_size(56), 2 * 16 * 7);
    }

    #[test]
    #[should_panic(expected = "at least two components")]
    fn rejects_single_component() {
        let _ = Ciphertext::from_parts(vec![Poly::zero(4)]);
    }

    #[test]
    fn plaintext_zero_is_zero() {
        assert!(Plaintext::zero(8).poly().is_zero());
    }
}
