//! BFV parameter sets.
//!
//! The paper (§4.2) presents CIPHERMATCH with `n = 1024`, 32-bit ciphertext
//! coefficients and 16-bit plaintext coefficients, and notes the algorithm
//! adapts to any HE-standard parameter set. We provide that preset plus a
//! multiplication-capable set for the arithmetic baseline (Yasuda et al.), a
//! batching-capable set for SIMD/rotation experiments, and small insecure
//! sets for fast tests.

use std::sync::Arc;

use cm_hemath::{find_prime_1_mod, Modulus, RingContext, WideMultiplier};

/// Static parameters of a BFV instantiation.
#[derive(Debug, Clone)]
pub struct BfvParams {
    /// Ring degree `n` (power of two).
    pub n: usize,
    /// Ciphertext coefficient modulus `q`.
    pub q: u64,
    /// Plaintext coefficient modulus `t`.
    pub t: u64,
    /// Standard deviation of the error distribution.
    pub sigma: f64,
    /// Decomposition base (log2) for relinearization / key switching.
    pub decomp_log2: u32,
    /// Human-readable name of the preset.
    pub name: &'static str,
}

impl BfvParams {
    /// The paper's CIPHERMATCH parameters: `n = 1024`, 32-bit `q`,
    /// `t = 2^16` (§4.2). Addition-only workloads; `q/t ≈ 2^16` leaves a
    /// comfortable margin for the single Hom-Add the algorithm needs.
    pub fn ciphermatch_1024() -> Self {
        Self {
            n: 1024,
            q: find_prime_1_mod(32, 1 << 16),
            t: 1 << 16,
            sigma: 3.2,
            decomp_log2: 16,
            name: "ciphermatch_1024",
        }
    }

    /// Parameters for the arithmetic baseline (Yasuda et al. \[27\]):
    /// one ciphertext-ciphertext multiplication of depth, single-bit
    /// packing, Hamming-distance plaintexts (`t = 1024` bounds HD ≤ 512).
    pub fn arithmetic_2048() -> Self {
        Self {
            n: 2048,
            q: find_prime_1_mod(56, 4096),
            t: 1 << 10,
            sigma: 3.2,
            decomp_log2: 16,
            name: "arithmetic_2048",
        }
    }

    /// Batching-capable parameters: `t = 12289` is prime with
    /// `t ≡ 1 (mod 2n)`, enabling SIMD slot encoding and rotations
    /// (Bonte/Kim-style baselines).
    pub fn batching_1024() -> Self {
        Self {
            n: 1024,
            q: find_prime_1_mod(55, 2048 * 12289),
            t: 12289,
            sigma: 3.2,
            decomp_log2: 16,
            name: "batching_1024",
        }
    }

    /// The IFP-compatible variant of the paper parameters: `q = 2^32`
    /// exactly, so coefficient-wise addition modulo `q` is plain wrapping
    /// 32-bit addition — bit-for-bit what the in-flash bit-serial adder
    /// computes (§4.3.1). Power-of-two moduli are valid for ring-LWE;
    /// there is no NTT, so encryption falls back to schoolbook
    /// multiplication (only `Hom-Add` is ever needed server-side).
    pub fn ciphermatch_ifp_1024() -> Self {
        Self {
            n: 1024,
            q: 1 << 32,
            t: 1 << 16,
            sigma: 3.2,
            decomp_log2: 16,
            name: "ciphermatch_ifp_1024",
        }
    }

    /// Small, fast, **insecure** power-of-two-modulus parameters matching
    /// the in-flash adder (32-bit coefficients), for IFP tests.
    pub fn insecure_test_pow2() -> Self {
        Self {
            n: 256,
            q: 1 << 32,
            t: 1 << 8,
            sigma: 3.2,
            decomp_log2: 16,
            name: "insecure_test_pow2",
        }
    }

    /// Small, fast, **insecure** parameters for unit tests (addition only).
    pub fn insecure_test_add() -> Self {
        Self {
            n: 256,
            q: find_prime_1_mod(32, 512),
            t: 1 << 8,
            sigma: 3.2,
            decomp_log2: 16,
            name: "insecure_test_add",
        }
    }

    /// Small, fast, **insecure** parameters supporting one multiplication.
    pub fn insecure_test_mul() -> Self {
        Self {
            n: 256,
            q: find_prime_1_mod(48, 512),
            t: 1 << 6,
            sigma: 3.2,
            decomp_log2: 16,
            name: "insecure_test_mul",
        }
    }

    /// Small, fast, **insecure** batching parameters.
    /// `7681 = 30 * 256 + 1 ≡ 1 (mod 512)` is prime.
    pub fn insecure_test_batch() -> Self {
        Self {
            n: 256,
            q: find_prime_1_mod(52, 512 * 7681),
            t: 7681,
            sigma: 3.2,
            decomp_log2: 16,
            name: "insecure_test_batch",
        }
    }

    /// `Δ = floor(q / t)`, the plaintext scaling factor.
    pub fn delta(&self) -> u64 {
        self.q / self.t
    }

    /// Number of decomposition digits for key switching.
    pub fn decomp_levels(&self) -> usize {
        let qbits = 64 - self.q.leading_zeros();
        qbits.div_ceil(self.decomp_log2) as usize
    }

    /// Expanded plaintext size of one ciphertext in bytes, assuming each
    /// coefficient is stored in `ceil(bits(q)/8)` bytes: `2 * n * bytes(q)`.
    /// This is the quantity behind the paper's 4x memory-blow-up claim.
    pub fn ciphertext_bytes(&self) -> usize {
        let qbytes = (64 - self.q.leading_zeros()).div_ceil(8) as usize;
        2 * self.n * qbytes
    }

    /// Plaintext capacity of one polynomial in bytes when every coefficient
    /// carries `log2(t)` packed bits (dense packing).
    pub fn plaintext_capacity_bytes(&self) -> usize {
        let tbits = (63 - self.t.leading_zeros()) as usize; // exact for power-of-two t
        self.n * tbits / 8
    }
}

/// Shared BFV context: parameters plus the ring machinery they imply.
#[derive(Debug, Clone)]
pub struct BfvContext {
    params: BfvParams,
    rq: Arc<RingContext>,
    wide: Arc<WideMultiplier>,
}

impl BfvContext {
    /// Builds the rings and wide multiplier for a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not an NTT-friendly prime for `n` (all presets are),
    /// or if `t >= q`.
    pub fn new(params: BfvParams) -> Self {
        assert!(params.t < params.q, "plaintext modulus must be below q");
        assert!(
            params.q % params.t <= 1,
            "q mod t must be <= 1 so the BFV rounding residue r_t(q) stays \
             negligible; pick q = 1 mod lcm(2n, t) (see find_prime_1_mod)"
        );
        let rq = RingContext::new(Modulus::new(params.q), params.n);
        // NTT-friendly prime moduli get fast encryption/multiplication;
        // power-of-two moduli (the IFP-compatible presets) fall back to
        // schoolbook ring multiplication, which only affects encryption
        // speed — Hom-Add never multiplies.
        let wide = WideMultiplier::new(params.n);
        assert!(
            wide.max_input_magnitude() >= params.q / 2,
            "exact tensoring range too small for q"
        );
        Self {
            params,
            rq: Arc::new(rq),
            wide: Arc::new(wide),
        }
    }

    /// The parameter set.
    #[inline]
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// The ciphertext ring `R_q`.
    #[inline]
    pub fn rq(&self) -> &RingContext {
        &self.rq
    }

    /// The exact tensor multiplier.
    #[inline]
    pub fn wide(&self) -> &WideMultiplier {
        &self.wide
    }

    /// Plaintext modulus as a [`Modulus`].
    pub fn t_modulus(&self) -> Modulus {
        Modulus::new(self.params.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build() {
        for p in [
            BfvParams::ciphermatch_1024(),
            BfvParams::ciphermatch_ifp_1024(),
            BfvParams::arithmetic_2048(),
            BfvParams::batching_1024(),
            BfvParams::insecure_test_add(),
            BfvParams::insecure_test_pow2(),
            BfvParams::insecure_test_mul(),
            BfvParams::insecure_test_batch(),
        ] {
            let name = p.name;
            let ctx = BfvContext::new(p);
            assert!(ctx.params().delta() > 1, "{name}");
        }
    }

    #[test]
    fn ciphermatch_params_match_paper() {
        let p = BfvParams::ciphermatch_1024();
        assert_eq!(p.n, 1024);
        assert_eq!(64 - p.q.leading_zeros(), 32, "q must be 32-bit");
        assert_eq!(p.t, 65536, "t must be 16-bit");
        // Paper §4.2.1: ciphertext is 4x the packed plaintext (2 polys x 2x
        // coefficient width).
        assert_eq!(p.ciphertext_bytes(), 4 * p.plaintext_capacity_bytes());
    }

    #[test]
    fn batching_modulus_supports_slots() {
        let p = BfvParams::batching_1024();
        assert_eq!(p.t % (2 * p.n as u64), 1);
        assert!(cm_hemath::is_prime(p.t));
        let p = BfvParams::insecure_test_batch();
        assert_eq!(p.t % (2 * p.n as u64), 1);
        assert!(cm_hemath::is_prime(p.t));
    }

    #[test]
    fn decomp_levels_cover_q() {
        let p = BfvParams::arithmetic_2048();
        assert!(p.decomp_levels() as u32 * p.decomp_log2 >= 64 - p.q.leading_zeros());
    }
}
