//! `cm_reactor` — a readiness-driven network front-end that admits
//! frames, not connections.
//!
//! One thread owns every socket: a level-triggered epoll loop accepts
//! connections, incrementally reassembles length-prefixed frames via a
//! caller-supplied [`FrameDecoder`], and hands each complete frame to
//! the application through [`Events::on_frame`]. Replies travel the
//! other way over a command queue plus a wakeup pipe
//! ([`ReactorHandle::send`]), with per-connection write backpressure:
//! partial writes are queued, `EPOLLOUT` is armed only while a queue is
//! nonempty, and a connection whose outbound queue exceeds
//! [`ReactorConfig::max_buffered_write`] is closed with a typed
//! [`CloseReason::WriteOverflow`].
//!
//! The crate has no external dependencies (only the equally
//! dependency-free `cm_telemetry` for its event-loop metrics): the
//! epoll shim in [`sys`] declares the handful of needed C symbols
//! directly (`std` already links the C library), honoring the
//! workspace's offline-build constraint. Passing a
//! [`ReactorMetrics::register`]ed handle set in [`ReactorConfig`]
//! turns on epoll-wait/bytes/frames/close accounting; the default
//! handles are no-ops.
//!
//! Idle connections cost one fd and a small decoder buffer — no
//! thread, no pool slot. Admission is split accordingly: the reactor
//! caps *open sockets* ([`ReactorConfig::max_open_sockets`], rejected
//! arrivals get [`Events::on_reject`]'s farewell frame), while the
//! application layers its own cap on *in-flight work*.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod sys;

mod reactor;

pub use reactor::{
    CloseCounters, CloseReason, ConnId, Events, FrameDecoder, Reactor, ReactorConfig,
    ReactorHandle, ReactorMetrics, ReactorThread,
};
