//! The event loop: one thread, every socket, frames in, frames out.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use cm_telemetry::{metric_names, Counter, Gauge, Histogram, MetricsRegistry};

use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};

/// The listener's epoll token.
const TOKEN_LISTENER: u64 = 0;
/// The wakeup pipe's epoll token.
const TOKEN_WAKE: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// How many readiness records one `epoll_wait` drains.
const EVENT_BATCH: usize = 128;
/// Read chunk size per `read` call on a ready socket.
const READ_CHUNK: usize = 64 * 1024;
/// Backoff (ms) after a failed `accept` — a level-triggered listener
/// with a pending backlog would otherwise re-report instantly and spin.
const ACCEPT_BACKOFF_MS: i32 = 10;

/// Identifies one accepted connection for the lifetime of the reactor.
/// Tokens are never reused, so a late command aimed at a closed
/// connection is a no-op rather than a hit on its successor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(u64);

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// Why the reactor tore a connection down (reported to
/// [`Events::on_close`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed its end (EOF at or inside a frame boundary).
    PeerClosed,
    /// The frame decoder rejected the byte stream.
    Violation(&'static str),
    /// The connection's outbound queue overflowed
    /// [`ReactorConfig::max_buffered_write`] — the peer stopped reading
    /// faster than replies were produced.
    WriteOverflow,
    /// A socket-level read or write error.
    Io,
    /// The reactor shut down and force-closed every tracked socket.
    Shutdown,
    /// [`ReactorHandle::close`] asked for it.
    Requested,
}

/// Incremental frame reassembly: the reactor feeds raw bytes in
/// whatever chunks the socket yields and drains whole frames out. The
/// protocol (header validation, size caps) lives entirely in the
/// implementation — the reactor only moves bytes.
pub trait FrameDecoder {
    /// Absorbs `bytes`. A violation (bad header, oversized declaration)
    /// returns its reason and permanently poisons the stream: the
    /// reactor reports it via [`Events::on_violation`] and closes.
    ///
    /// # Errors
    ///
    /// The static reason the byte stream is not a valid frame sequence.
    fn feed(&mut self, bytes: &[u8]) -> Result<(), &'static str>;

    /// Pops the next fully reassembled frame payload, if any.
    fn next_frame(&mut self) -> Option<Vec<u8>>;
}

/// The application half of the reactor, invoked on the reactor thread —
/// implementations must return quickly (hand real work to an exec
/// pool) or every connection stalls.
pub trait Events: Send + 'static {
    /// Per-connection frame reassembly state.
    type Decoder: FrameDecoder;

    /// Builds the decoder for a newly admitted connection.
    fn decoder(&mut self) -> Self::Decoder;

    /// A connection was admitted and registered.
    fn on_open(&mut self, _conn: ConnId) {}

    /// One complete frame payload arrived on `conn`.
    fn on_frame(&mut self, conn: ConnId, frame: Vec<u8>);

    /// A socket arrived past [`ReactorConfig::max_open_sockets`]. The
    /// returned bytes (if any) are written to the rejected socket
    /// best-effort before it is dropped; it is never admitted.
    fn on_reject(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// `conn`'s decoder rejected the stream. The returned bytes (if
    /// any) are queued as a farewell, flushed, and the connection is
    /// closed with [`CloseReason::Violation`].
    fn on_violation(&mut self, _conn: ConnId, _reason: &'static str) -> Option<Vec<u8>> {
        None
    }

    /// `conn` is gone; no further events reference it. Pending replies
    /// sent to its id are silently dropped.
    fn on_close(&mut self, _conn: ConnId, _reason: CloseReason) {}
}

/// Per-[`CloseReason`] close counters, all sharing one metric name
/// under a `reason` label.
#[derive(Debug, Clone, Default)]
pub struct CloseCounters {
    peer_closed: Counter,
    violation: Counter,
    write_overflow: Counter,
    io: Counter,
    shutdown: Counter,
    requested: Counter,
}

impl CloseCounters {
    fn register(registry: &MetricsRegistry) -> Self {
        let closes =
            |reason| registry.register_counter(metric_names::REACTOR_CLOSES, &[("reason", reason)]);
        Self {
            peer_closed: closes("peer_closed"),
            violation: closes("violation"),
            write_overflow: closes("write_overflow"),
            io: closes("io"),
            shutdown: closes("shutdown"),
            requested: closes("requested"),
        }
    }

    fn count(&self, reason: CloseReason) {
        match reason {
            CloseReason::PeerClosed => self.peer_closed.inc(),
            CloseReason::Violation(_) => self.violation.inc(),
            CloseReason::WriteOverflow => self.write_overflow.inc(),
            CloseReason::Io => self.io.inc(),
            CloseReason::Shutdown => self.shutdown.inc(),
            CloseReason::Requested => self.requested.inc(),
        }
    }
}

/// The telemetry handles the event loop records into. The default is
/// all no-ops, so a reactor without a registry pays only a `None`
/// branch per record; [`ReactorMetrics::register`] wires a loop into a
/// live [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct ReactorMetrics {
    /// Time the reactor thread spent blocked in `epoll_wait`, µs.
    pub epoll_wait: Histogram,
    /// Complete frames reassembled across all connections.
    pub frames_assembled: Counter,
    /// Payload bytes read off connection sockets.
    pub bytes_in: Counter,
    /// Bytes written to connection sockets (partial writes included).
    pub bytes_out: Counter,
    /// Bytes currently queued for write across all connections.
    pub write_queue_bytes: Gauge,
    /// Connections accepted and admitted.
    pub accepts: Counter,
    /// Connections rejected at [`ReactorConfig::max_open_sockets`].
    pub rejects: Counter,
    /// Closes, by [`CloseReason`].
    pub closes: CloseCounters,
}

impl ReactorMetrics {
    /// Registers every event-loop metric in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            epoll_wait: registry.register_histogram(metric_names::REACTOR_EPOLL_WAIT_US, &[]),
            frames_assembled: registry
                .register_counter(metric_names::REACTOR_FRAMES_ASSEMBLED, &[]),
            bytes_in: registry.register_counter(metric_names::REACTOR_BYTES_IN, &[]),
            bytes_out: registry.register_counter(metric_names::REACTOR_BYTES_OUT, &[]),
            write_queue_bytes: registry
                .register_gauge(metric_names::REACTOR_WRITE_QUEUE_BYTES, &[]),
            accepts: registry.register_counter(metric_names::REACTOR_ACCEPTS, &[]),
            rejects: registry.register_counter(metric_names::REACTOR_REJECTS, &[]),
            closes: CloseCounters::register(registry),
        }
    }
}

/// Reactor knobs.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Admission cap on concurrently open sockets. Arrivals past the
    /// cap get [`Events::on_reject`]'s farewell and are dropped without
    /// ever being registered.
    pub max_open_sockets: usize,
    /// Per-connection cap on buffered outbound bytes. A send that
    /// would exceed it closes the connection with
    /// [`CloseReason::WriteOverflow`] — backpressure against a peer
    /// that requests faster than it reads.
    pub max_buffered_write: usize,
    /// Telemetry handles the event loop records into (no-ops by
    /// default).
    pub metrics: ReactorMetrics,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            max_open_sockets: 4096,
            max_buffered_write: 8 * 1024 * 1024,
            metrics: ReactorMetrics::default(),
        }
    }
}

/// Commands other threads enqueue for the reactor thread.
enum Command {
    /// Queue `bytes` for writing on a connection.
    Send(ConnId, Vec<u8>),
    /// Close a connection (flushes nothing; immediate).
    Close(ConnId),
}

/// State shared between the reactor thread and its handles.
struct Shared {
    commands: Mutex<VecDeque<Command>>,
    /// Writer half of the wakeup pipe; one nonblocking byte per nudge.
    wake: UnixStream,
    shutdown: AtomicBool,
    /// Gauge of currently admitted sockets (observability for soaks).
    open_sockets: AtomicUsize,
    /// False once the event loop has exited; sends then report failure.
    live: AtomicBool,
}

fn lock_commands(shared: &Shared) -> MutexGuard<'_, VecDeque<Command>> {
    shared
        .commands
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Cloneable, `Send` handle for talking to a running reactor from any
/// thread (typically an exec-pool worker finishing a request).
#[derive(Clone)]
pub struct ReactorHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ReactorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorHandle")
            .field("live", &self.shared.live.load(Ordering::SeqCst))
            .finish()
    }
}

impl ReactorHandle {
    fn push(&self, command: Command) {
        lock_commands(&self.shared).push_back(command);
        self.wake();
    }

    fn wake(&self) {
        // One byte is enough; WouldBlock means a nudge is already
        // pending, which is just as good.
        let _ = (&self.shared.wake).write(&[1]);
    }

    /// Queues `bytes` for writing on `conn`. Returns `false` when the
    /// reactor has already exited (the bytes go nowhere); a send to a
    /// connection that closed in the meantime is silently dropped.
    pub fn send(&self, conn: ConnId, bytes: Vec<u8>) -> bool {
        if !self.shared.live.load(Ordering::SeqCst) {
            return false;
        }
        self.push(Command::Send(conn, bytes));
        true
    }

    /// Asks the reactor to close `conn` immediately
    /// ([`CloseReason::Requested`]).
    pub fn close(&self, conn: ConnId) {
        if self.shared.live.load(Ordering::SeqCst) {
            self.push(Command::Close(conn));
        }
    }

    /// Signals the event loop to exit; it force-closes every tracked
    /// socket ([`CloseReason::Shutdown`]) on the way out.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.wake();
    }

    /// Currently admitted sockets.
    pub fn open_sockets(&self) -> usize {
        self.shared.open_sockets.load(Ordering::SeqCst)
    }

    /// Whether the event loop is still running.
    pub fn is_live(&self) -> bool {
        self.shared.live.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running reactor: the listener plus the epoll
/// instance and wakeup pipe. [`Reactor::run`] consumes it on the
/// calling thread; [`Reactor::spawn`] moves it onto a dedicated one.
pub struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    config: ReactorConfig,
    addr: SocketAddr,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor").field("addr", &self.addr).finish()
    }
}

impl Reactor {
    /// Binds `addr` (port 0 for ephemeral) and prepares the reactor.
    ///
    /// # Errors
    ///
    /// Bind/registration failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ReactorConfig) -> io::Result<Self> {
        Self::from_listener(TcpListener::bind(addr)?, config)
    }

    /// Wraps an already bound listener.
    ///
    /// # Errors
    ///
    /// Nonblocking/registration failures.
    pub fn from_listener(listener: TcpListener, config: ReactorConfig) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wake_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKE)?;
        let shared = Arc::new(Shared {
            commands: Mutex::new(VecDeque::new()),
            wake: wake_tx,
            shutdown: AtomicBool::new(false),
            open_sockets: AtomicUsize::new(0),
            live: AtomicBool::new(true),
        });
        Ok(Self {
            epoll,
            listener,
            wake_rx,
            shared,
            config,
            addr,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for feeding the reactor from other threads.
    pub fn handle(&self) -> ReactorHandle {
        ReactorHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the event loop on the calling thread until
    /// [`ReactorHandle::shutdown`]. Every tracked socket is
    /// force-closed on exit.
    pub fn run<E: Events>(self, events: E) {
        let shared = Arc::clone(&self.shared);
        let mut driver = Driver {
            epoll: self.epoll,
            listener: self.listener,
            wake_rx: self.wake_rx,
            shared: self.shared,
            config: self.config,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            events,
        };
        driver.run();
        shared.live.store(false, Ordering::SeqCst);
    }

    /// Runs the event loop on a dedicated thread — the one legitimate
    /// non-exec thread in the workspace: it multiplexes every socket
    /// and must outlive any single job, so it cannot be a pool job
    /// itself (a pool drain would deadlock behind its own front-end).
    ///
    /// # Errors
    ///
    /// The thread-spawn failure.
    pub fn spawn<E: Events>(self, events: E) -> io::Result<ReactorThread> {
        let handle = self.handle();
        let join = std::thread::Builder::new()
            .name("cm-reactor".to_string())
            .spawn(move || self.run(events))?;
        Ok(ReactorThread {
            handle,
            join: Some(join),
        })
    }
}

/// A reactor running on its own thread; shuts down and joins on drop.
pub struct ReactorThread {
    handle: ReactorHandle,
    join: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ReactorThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorThread")
            .field("live", &self.handle.is_live())
            .finish()
    }
}

impl ReactorThread {
    /// The handle to the running loop.
    pub fn handle(&self) -> ReactorHandle {
        self.handle.clone()
    }

    /// Signals shutdown and joins the reactor thread: on return every
    /// socket is closed and no further [`Events`] callback will run.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(join) = self.join.take() {
            self.handle.shutdown();
            let _ = join.join();
        }
    }
}

impl Drop for ReactorThread {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One admitted connection's reactor-side state.
struct Conn<D> {
    stream: TcpStream,
    decoder: D,
    /// Outbound frames not yet fully written, oldest first.
    out: VecDeque<Vec<u8>>,
    /// How much of `out.front()` has already been written.
    out_head: usize,
    /// Total bytes across `out` (minus `out_head`).
    out_bytes: usize,
    /// Whether `EPOLLOUT` is currently armed.
    wants_out: bool,
    /// Set when the connection should close as soon as `out` drains
    /// (farewell frames, half-closed peers); reads stop immediately.
    closing: Option<CloseReason>,
}

/// What one readable burst on a connection produced.
enum ReadOutcome {
    /// Socket drained to `WouldBlock`; connection stays open.
    Open,
    /// EOF from the peer.
    Eof,
    /// The decoder rejected the stream.
    Violation(&'static str),
    /// Socket error.
    Failed,
}

/// The running event loop's state, owned by the reactor thread.
struct Driver<E: Events> {
    epoll: Epoll,
    listener: TcpListener,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    config: ReactorConfig,
    conns: HashMap<ConnId, Conn<E::Decoder>>,
    next_token: u64,
    events: E,
}

impl<E: Events> Driver<E> {
    fn run(&mut self) {
        let mut batch = [EpollEvent::empty(); EVENT_BATCH];
        let mut scratch = vec![0u8; READ_CHUNK];
        let mut accept_backoff = false;
        loop {
            self.drain_commands();
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let timeout = if accept_backoff {
                ACCEPT_BACKOFF_MS
            } else {
                -1
            };
            accept_backoff = false;
            let parked = Instant::now();
            let ready = match self.epoll.wait(&mut batch, timeout) {
                Ok(n) => n,
                Err(_) => break, // EINTR is retried inside; anything else is fatal
            };
            self.config
                .metrics
                .epoll_wait
                .record_micros(parked.elapsed());
            for event in batch.iter().take(ready) {
                // Copy out of the (possibly packed) record before use.
                let (mask, token) = (event.events, event.data);
                match token {
                    TOKEN_LISTENER => accept_backoff = self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake(&mut scratch),
                    token => self.conn_ready(ConnId(token), mask, &mut scratch),
                }
            }
            // Commands enqueued by handlers during this batch get
            // processed at the top of the next iteration; the wakeup
            // byte they wrote makes that immediate.
        }
        // Drain: force-close every tracked socket so a shutdown never
        // waits on a peer.
        let open: Vec<ConnId> = self.conns.keys().copied().collect();
        for conn in open {
            self.close(conn, CloseReason::Shutdown);
        }
    }

    fn drain_commands(&mut self) {
        loop {
            // Take one command at a time rather than holding the lock
            // over handler calls.
            let command = lock_commands(&self.shared).pop_front();
            match command {
                Some(Command::Send(conn, bytes)) => self.queue_write(conn, bytes),
                Some(Command::Close(conn)) => self.close(conn, CloseReason::Requested),
                None => return,
            }
        }
    }

    fn drain_wake(&mut self, scratch: &mut [u8]) {
        loop {
            match self.wake_rx.read(scratch) {
                Ok(0) => return, // writer gone; nothing more to drain
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    /// Accepts until `WouldBlock`; returns whether the loop should back
    /// off before the next wait (persistent accept failure).
    fn accept_ready(&mut self) -> bool {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient (ECONNABORTED) or resource (EMFILE)
                // failure: the level-triggered listener will re-report,
                // so ask the loop to back off instead of spinning.
                Err(_) => return true,
            }
        }
    }

    fn admit(&mut self, mut stream: TcpStream) {
        if self.conns.len() >= self.config.max_open_sockets {
            // Typed rejection: the farewell is written on the still-
            // blocking fresh socket (its send buffer is empty, so a
            // frame-sized write cannot stall the loop), then dropped.
            if let Some(farewell) = self.events.on_reject() {
                let _ = stream.write_all(&farewell);
            }
            self.config.metrics.rejects.inc();
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        let conn = ConnId(token);
        if self.epoll.add(stream.as_raw_fd(), EPOLLIN, token).is_err() {
            return;
        }
        self.next_token += 1;
        let decoder = self.events.decoder();
        self.conns.insert(
            conn,
            Conn {
                stream,
                decoder,
                out: VecDeque::new(),
                out_head: 0,
                out_bytes: 0,
                wants_out: false,
                closing: None,
            },
        );
        self.shared.open_sockets.fetch_add(1, Ordering::SeqCst);
        self.config.metrics.accepts.inc();
        self.events.on_open(conn);
    }

    fn conn_ready(&mut self, conn: ConnId, mask: u32, scratch: &mut [u8]) {
        // A token from an earlier close in this same batch: ignore.
        if !self.conns.contains_key(&conn) {
            return;
        }
        if mask & EPOLLERR != 0 {
            self.close(conn, CloseReason::Io);
            return;
        }
        if mask & EPOLLIN != 0 {
            self.readable(conn, scratch);
        } else if mask & EPOLLHUP != 0 {
            // HUP without readable data left: the peer is gone.
            self.close(conn, CloseReason::PeerClosed);
            return;
        }
        if mask & EPOLLOUT != 0 {
            self.flush(conn);
        }
    }

    fn readable(&mut self, conn: ConnId, scratch: &mut [u8]) {
        let mut frames = Vec::new();
        let outcome = {
            let Some(state) = self.conns.get_mut(&conn) else {
                return;
            };
            if state.closing.is_some() {
                return; // already draining a farewell; stop reading
            }
            let mut outcome = ReadOutcome::Open;
            loop {
                match state.stream.read(scratch) {
                    Ok(0) => {
                        outcome = ReadOutcome::Eof;
                        break;
                    }
                    Ok(n) => match state.decoder.feed(&scratch[..n]) {
                        Ok(()) => {
                            self.config.metrics.bytes_in.add(n as u64);
                            while let Some(frame) = state.decoder.next_frame() {
                                frames.push(frame);
                            }
                        }
                        Err(reason) => {
                            outcome = ReadOutcome::Violation(reason);
                            break;
                        }
                    },
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        outcome = ReadOutcome::Failed;
                        break;
                    }
                }
            }
            outcome
        };
        // Deliver complete frames decoded before any terminal event.
        self.config
            .metrics
            .frames_assembled
            .add(frames.len() as u64);
        for frame in frames {
            self.events.on_frame(conn, frame);
        }
        match outcome {
            ReadOutcome::Open => {}
            ReadOutcome::Eof => {
                // Flush whatever is already queued, then close; replies
                // still in flight on the pool are dropped, exactly as a
                // blocking server's failed write would drop them.
                self.close_after_flush(conn, CloseReason::PeerClosed);
            }
            ReadOutcome::Violation(reason) => {
                let farewell = self.events.on_violation(conn, reason);
                if let Some(bytes) = farewell {
                    self.queue_write(conn, bytes);
                }
                self.close_after_flush(conn, CloseReason::Violation(reason));
            }
            ReadOutcome::Failed => self.close(conn, CloseReason::Io),
        }
    }

    /// Marks `conn` to close once its outbound queue drains (immediate
    /// when the queue is already empty).
    fn close_after_flush(&mut self, conn: ConnId, reason: CloseReason) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        if state.out.is_empty() {
            self.close(conn, reason);
        } else if state.closing.is_none() {
            state.closing = Some(reason);
        }
    }

    fn queue_write(&mut self, conn: ConnId, bytes: Vec<u8>) {
        let overflow = {
            let Some(state) = self.conns.get_mut(&conn) else {
                return; // connection already gone: drop the reply
            };
            if state.closing.is_some() {
                return; // farewell already queued; nothing else goes out
            }
            if state.out_bytes + bytes.len() > self.config.max_buffered_write {
                true
            } else {
                state.out_bytes += bytes.len();
                self.config
                    .metrics
                    .write_queue_bytes
                    .add(bytes.len() as i64);
                state.out.push_back(bytes);
                false
            }
        };
        if overflow {
            self.close(conn, CloseReason::WriteOverflow);
        } else {
            self.flush(conn);
        }
    }

    /// Writes as much of `conn`'s outbound queue as the socket accepts,
    /// arming or disarming `EPOLLOUT` to match what remains.
    fn flush(&mut self, conn: ConnId) {
        enum After {
            Keep,
            Close(CloseReason),
            Failed,
        }
        let after = {
            let Some(state) = self.conns.get_mut(&conn) else {
                return;
            };
            let mut after = After::Keep;
            'queue: while let Some(front) = state.out.front() {
                while state.out_head < front.len() {
                    match state.stream.write(&front[state.out_head..]) {
                        Ok(0) => {
                            after = After::Failed;
                            break 'queue;
                        }
                        Ok(n) => {
                            state.out_head += n;
                            state.out_bytes -= n;
                            self.config.metrics.bytes_out.add(n as u64);
                            self.config.metrics.write_queue_bytes.add(-(n as i64));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break 'queue,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            after = After::Failed;
                            break 'queue;
                        }
                    }
                }
                state.out.pop_front();
                state.out_head = 0;
            }
            if matches!(after, After::Keep) {
                if state.out.is_empty() {
                    if let Some(reason) = state.closing {
                        after = After::Close(reason);
                    } else if state.wants_out {
                        state.wants_out = false;
                        let fd = state.stream.as_raw_fd();
                        let _ = self.epoll.modify(fd, EPOLLIN, conn.0);
                    }
                } else if !state.wants_out {
                    state.wants_out = true;
                    let fd = state.stream.as_raw_fd();
                    let _ = self.epoll.modify(fd, EPOLLIN | EPOLLOUT, conn.0);
                }
            }
            after
        };
        match after {
            After::Keep => {}
            After::Close(reason) => self.close(conn, reason),
            After::Failed => self.close(conn, CloseReason::Io),
        }
    }

    fn close(&mut self, conn: ConnId, reason: CloseReason) {
        let Some(state) = self.conns.remove(&conn) else {
            return;
        };
        let _ = self.epoll.remove(state.stream.as_raw_fd());
        // Queued-but-unwritten bytes die with the connection.
        self.config
            .metrics
            .write_queue_bytes
            .add(-(state.out_bytes as i64));
        drop(state); // closes the socket
        self.shared.open_sockets.fetch_sub(1, Ordering::SeqCst);
        self.config.metrics.closes.count(reason);
        self.events.on_close(conn, reason);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    /// A decoder for tests: 1-byte length prefix, then that many bytes.
    #[derive(Default)]
    struct TinyFrames {
        buf: Vec<u8>,
        ready: VecDeque<Vec<u8>>,
    }

    impl FrameDecoder for TinyFrames {
        fn feed(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
            self.buf.extend_from_slice(bytes);
            loop {
                let Some(&len) = self.buf.first() else {
                    return Ok(());
                };
                if len == 0xFF {
                    return Err("poison length");
                }
                let len = len as usize;
                if self.buf.len() < 1 + len {
                    return Ok(());
                }
                let frame = self.buf[1..1 + len].to_vec();
                self.buf.drain(..1 + len);
                self.ready.push_back(frame);
            }
        }

        fn next_frame(&mut self) -> Option<Vec<u8>> {
            self.ready.pop_front()
        }
    }

    /// Echo app: replies to every frame with the same frame, and
    /// reports lifecycle events over a channel.
    struct Echo {
        handle: ReactorHandle,
        log: mpsc::Sender<String>,
    }

    impl Events for Echo {
        type Decoder = TinyFrames;

        fn decoder(&mut self) -> TinyFrames {
            TinyFrames::default()
        }

        fn on_open(&mut self, conn: ConnId) {
            let _ = self.log.send(format!("open {conn}"));
        }

        fn on_frame(&mut self, conn: ConnId, frame: Vec<u8>) {
            let mut reply = vec![frame.len() as u8];
            reply.extend_from_slice(&frame);
            self.handle.send(conn, reply);
        }

        fn on_reject(&mut self) -> Option<Vec<u8>> {
            Some(vec![4, b'b', b'u', b's', b'y'])
        }

        fn on_violation(&mut self, _conn: ConnId, reason: &'static str) -> Option<Vec<u8>> {
            let mut bytes = vec![reason.len() as u8];
            bytes.extend_from_slice(reason.as_bytes());
            Some(bytes)
        }

        fn on_close(&mut self, conn: ConnId, reason: CloseReason) {
            let _ = self.log.send(format!("close {conn} {reason:?}"));
        }
    }

    fn start(config: ReactorConfig) -> (ReactorThread, SocketAddr, mpsc::Receiver<String>) {
        let reactor = Reactor::bind("127.0.0.1:0", config).unwrap();
        let addr = reactor.local_addr();
        let handle = reactor.handle();
        let (log, events) = mpsc::channel();
        let thread = reactor.spawn(Echo { handle, log }).unwrap();
        (thread, addr, events)
    }

    fn read_reply(stream: &mut TcpStream) -> Vec<u8> {
        let mut len = [0u8; 1];
        stream.read_exact(&mut len).unwrap();
        let mut body = vec![0u8; len[0] as usize];
        stream.read_exact(&mut body).unwrap();
        body
    }

    #[test]
    fn frames_round_trip_even_when_dribbled_byte_by_byte() {
        let (thread, addr, _events) = start(ReactorConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let message = [5u8, b'h', b'e', b'l', b'l', b'o'];
        for byte in message {
            stream.write_all(&[byte]).unwrap();
            stream.flush().unwrap();
        }
        assert_eq!(read_reply(&mut stream), b"hello");
        // A second frame on the same connection still works.
        stream.write_all(&[2, b'h', b'i']).unwrap();
        assert_eq!(read_reply(&mut stream), b"hi");
        thread.shutdown();
    }

    #[test]
    fn metrics_count_accepts_frames_bytes_and_closes() {
        let registry = MetricsRegistry::new();
        let (thread, addr, _events) = start(ReactorConfig {
            max_open_sockets: 1,
            metrics: ReactorMetrics::register(&registry),
            ..ReactorConfig::default()
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(&[5, b'h', b'e', b'l', b'l', b'o'])
            .unwrap();
        assert_eq!(read_reply(&mut stream), b"hello");
        // A second socket is rejected at the cap of one.
        let mut second = TcpStream::connect(addr).unwrap();
        second
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(read_reply(&mut second), b"busy");
        // Joining the reactor thread makes every counter final.
        thread.shutdown();
        let snap = registry.snapshot();
        use cm_telemetry::metric_names as names;
        assert_eq!(snap.counter(names::REACTOR_ACCEPTS, &[]), Some(1));
        assert_eq!(snap.counter(names::REACTOR_REJECTS, &[]), Some(1));
        assert_eq!(snap.counter(names::REACTOR_FRAMES_ASSEMBLED, &[]), Some(1));
        assert_eq!(snap.counter(names::REACTOR_BYTES_IN, &[]), Some(6));
        assert_eq!(
            snap.counter(names::REACTOR_BYTES_OUT, &[]),
            Some(6),
            "echo reply: length byte + payload (the reject farewell is \
             written pre-admission and not counted)"
        );
        assert_eq!(
            snap.counter(names::REACTOR_CLOSES, &[("reason", "shutdown")]),
            Some(1)
        );
        assert_eq!(
            snap.gauge(names::REACTOR_WRITE_QUEUE_BYTES, &[]),
            Some(0),
            "queued bytes all flushed or released on close"
        );
        assert!(
            snap.histogram(names::REACTOR_EPOLL_WAIT_US, &[])
                .is_some_and(|h| h.count > 0),
            "the loop waited at least once"
        );
    }

    #[test]
    fn sockets_past_the_cap_get_the_farewell_and_are_dropped() {
        let (thread, addr, events) = start(ReactorConfig {
            max_open_sockets: 1,
            ..ReactorConfig::default()
        });
        let mut first = TcpStream::connect(addr).unwrap();
        first.write_all(&[1, b'a']).unwrap();
        first
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(read_reply(&mut first), b"a");
        // Second socket: rejected with the farewell, then EOF.
        let mut second = TcpStream::connect(addr).unwrap();
        second
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(read_reply(&mut second), b"busy");
        let mut rest = Vec::new();
        second.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        // The admitted socket keeps serving; only one open ever shows.
        assert_eq!(thread.handle().open_sockets(), 1);
        first.write_all(&[1, b'b']).unwrap();
        assert_eq!(read_reply(&mut first), b"b");
        // Dropping the first frees the slot for a third.
        drop(first);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut third_reply = Vec::new();
        while std::time::Instant::now() < deadline {
            let mut third = TcpStream::connect(addr).unwrap();
            third
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            third.write_all(&[1, b'c']).unwrap();
            match (|| -> std::io::Result<Vec<u8>> {
                let mut len = [0u8; 1];
                third.read_exact(&mut len)?;
                let mut body = vec![0u8; len[0] as usize];
                third.read_exact(&mut body)?;
                Ok(body)
            })() {
                Ok(reply) if reply == b"c" => {
                    third_reply = reply;
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        assert_eq!(third_reply, b"c");
        drop(events);
        thread.shutdown();
    }

    #[test]
    fn violations_get_the_farewell_then_a_close() {
        let (thread, addr, events) = start(ReactorConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&[0xFF]).unwrap();
        assert_eq!(read_reply(&mut stream), b"poison length");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        // The close reason is the violation, not an io error.
        let mut saw_violation = false;
        while let Ok(line) = events.recv_timeout(Duration::from_secs(10)) {
            if line.contains("Violation") {
                saw_violation = true;
                break;
            }
        }
        assert!(saw_violation);
        thread.shutdown();
    }

    #[test]
    fn shutdown_force_closes_tracked_sockets() {
        let (thread, addr, events) = start(ReactorConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[1, b'x']).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(read_reply(&mut stream), b"x");
        let handle = thread.handle();
        thread.shutdown();
        assert!(!handle.is_live());
        assert_eq!(handle.open_sockets(), 0);
        // Sends after shutdown report failure instead of vanishing.
        assert!(!handle.send(ConnId(2), vec![1, b'y']));
        // The peer observes EOF.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        let closes: Vec<String> = events.try_iter().filter(|l| l.contains("close")).collect();
        assert!(closes.iter().any(|l| l.contains("Shutdown")), "{closes:?}");
    }

    #[test]
    fn requested_close_tears_the_connection_down() {
        let (thread, addr, events) = start(ReactorConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[1, b'q']).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(read_reply(&mut stream), b"q");
        // The only admitted conn is the first token.
        thread.handle().close(ConnId(FIRST_CONN_TOKEN));
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        let mut saw = false;
        while let Ok(line) = events.recv_timeout(Duration::from_secs(10)) {
            if line.contains("Requested") {
                saw = true;
                break;
            }
        }
        assert!(saw);
        thread.shutdown();
    }

    #[test]
    fn write_overflow_is_a_typed_close() {
        let (thread, addr, events) = start(ReactorConfig {
            max_buffered_write: 8,
            ..ReactorConfig::default()
        });
        let stream = TcpStream::connect(addr).unwrap();
        // Wait for admission, then overflow the tiny write buffer from
        // the handle side without the peer ever reading.
        let mut opened = None;
        while let Ok(line) = events.recv_timeout(Duration::from_secs(10)) {
            if let Some(id) = line.strip_prefix("open conn#") {
                opened = id.parse::<u64>().ok();
                break;
            }
        }
        let conn = ConnId(opened.unwrap());
        let handle = thread.handle();
        // The socket's kernel buffer absorbs early sends; keep pushing
        // until the reactor-side queue (capped at 8 bytes) overflows.
        let mut saw_overflow = false;
        for _ in 0..100_000 {
            handle.send(conn, vec![0u8; 64]);
            if let Ok(line) = events.recv_timeout(Duration::from_millis(1)) {
                if line.contains("WriteOverflow") {
                    saw_overflow = true;
                    break;
                }
            }
        }
        assert!(saw_overflow);
        drop(stream);
        thread.shutdown();
    }
}
