//! Minimal Linux syscall shim: `epoll` and the open-files rlimit.
//!
//! The workspace builds offline, so there is no `libc` or `mio` crate to
//! lean on — but `std` already links the C library, which means the
//! handful of symbols the reactor needs can be declared directly as
//! `extern "C"` imports. Everything unsafe lives behind the safe
//! [`Epoll`] wrapper; the rest of the crate never touches a raw syscall.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (`EPOLLERR`); always reported, never armed.
pub const EPOLLERR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`); always reported, never armed.
pub const EPOLLHUP: u32 = 0x010;

/// `EPOLL_CLOEXEC` for [`epoll_create1`].
const EPOLL_CLOEXEC: c_int = 0o2000000;
/// `epoll_ctl` op: register a new fd.
const EPOLL_CTL_ADD: c_int = 1;
/// `epoll_ctl` op: deregister an fd.
const EPOLL_CTL_DEL: c_int = 2;
/// `epoll_ctl` op: change an fd's armed interest set.
const EPOLL_CTL_MOD: c_int = 3;

/// One readiness record, ABI-compatible with the kernel's
/// `struct epoll_event`. On x86-64 the C definition is packed (12
/// bytes); elsewhere it uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of ready conditions ([`EPOLLIN`], [`EPOLLOUT`], …).
    pub events: u32,
    /// The caller-chosen token registered with the fd.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed record, for preallocating the wait buffer.
    pub const fn empty() -> Self {
        Self { events: 0, data: 0 }
    }
}

/// `getrlimit`/`setrlimit` resource id for the open-files cap.
const RLIMIT_NOFILE: c_int = 7;

/// ABI mirror of `struct rlimit` on 64-bit Linux.
#[repr(C)]
#[derive(Clone, Copy)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

/// Raises the process's soft open-files limit toward `target` (clamped
/// to the hard limit) and returns the soft limit now in effect. A limit
/// already at or above `target` is left untouched. Idle connections are
/// cheap for the reactor but each still costs an fd, so soak tests and
/// benches holding thousands of sockets call this first.
///
/// # Errors
///
/// The underlying `getrlimit`/`setrlimit` failure.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= target {
        return Ok(lim.rlim_cur);
    }
    lim.rlim_cur = target.min(lim.rlim_max);
    if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(lim.rlim_cur)
}

/// A safe epoll instance: owns the epoll fd, closes it on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// The `epoll_create1` failure.
    pub fn new() -> io::Result<Self> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest,
            data: token,
        };
        if unsafe { epoll_ctl(self.fd, op, fd, &mut event) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the level-triggered `interest` set; readiness
    /// records for it carry `token`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Re-arms `fd` with a new interest set (same token).
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL but must be non-null on
        // pre-2.6.9 kernels; pass one unconditionally.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until readiness (or `timeout_ms`; negative blocks
    /// indefinitely), filling `events` and returning how many records
    /// are valid. `EINTR` is retried internally.
    ///
    /// # Errors
    ///
    /// Any other `epoll_wait` failure.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_event_matches_the_kernel_abi() {
        #[cfg(target_arch = "x86_64")]
        assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
    }

    #[test]
    fn epoll_reports_readability_with_the_registered_token() {
        let epoll = Epoll::new().unwrap();
        let (mut tx, rx) = UnixStream::pair().unwrap();
        epoll.add(rx.as_raw_fd(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent::empty(); 4];
        // Nothing written yet: a zero-timeout wait sees nothing.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        tx.write_all(b"x").unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (ready, token) = (events[0].events, events[0].data);
        assert_eq!(token, 42);
        assert_ne!(ready & EPOLLIN, 0);
        // Deregistered fds report nothing even with data pending.
        epoll.remove(rx.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn modify_rearms_the_interest_set() {
        let epoll = Epoll::new().unwrap();
        let (tx, rx) = UnixStream::pair().unwrap();
        // Armed only for writability: a fresh socketpair is writable.
        epoll.add(tx.as_raw_fd(), EPOLLOUT, 7).unwrap();
        let mut events = [EpollEvent::empty(); 4];
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        // Re-armed for readability only: no longer reported.
        epoll.modify(tx.as_raw_fd(), EPOLLIN, 7).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        drop(rx);
        // Peer gone: HUP is reported even though it was never armed.
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].events & EPOLLHUP, 0);
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        let current = raise_nofile_limit(0).unwrap();
        assert!(current > 0);
        // Raising toward the current value is a no-op, never a lowering.
        assert_eq!(raise_nofile_limit(current).unwrap(), current);
    }
}
