//! Property-based tests of the CIPHERMATCH core: packing round-trips,
//! alignment-class soundness and full-match agreement with the plaintext
//! reference on random inputs.

use cm_bfv::{BfvContext, BfvParams};
use cm_core::{
    alignment_classes, bitwise_find_all, build_variants, generate_indices, segment_matches,
    BitString, DensePacking, SumTable,
};
use proptest::prelude::*;

fn arb_bits(max_len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_packing_roundtrips(bits in arb_bits(4000)) {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let p = DensePacking::new(&ctx);
        let data = BitString::from_bits(&bits);
        let polys = p.pack(&data);
        prop_assert_eq!(p.unpack(&polys, data.len()), data);
    }

    #[test]
    fn bitwise_matcher_equals_naive(db in arb_bits(600), qlen in 1usize..64, at in 0usize..512) {
        let db = BitString::from_bits(&db);
        prop_assume!(db.len() > qlen);
        let at = at % (db.len() - qlen);
        let q = db.slice(at, qlen);
        prop_assert_eq!(bitwise_find_all(&db, &q), db.find_all(&q));
    }

    #[test]
    fn alignment_masks_partition_window_bits(qbits in arb_bits(80)) {
        let q = BitString::from_bits(&qbits);
        for class in alignment_classes(&q, 16) {
            // Covered + masked bits = the full window; they never overlap.
            let mut covered = 0usize;
            for (i, &mask) in class.masks.iter().enumerate() {
                let dontcare = mask.count_ones() as usize;
                covered += 16 - dontcare;
                prop_assert_eq!(class.neg_segments[i] & mask, 0, "segment {} overlaps", i);
            }
            prop_assert_eq!(covered, q.len(), "r={}", class.r);
        }
    }

    #[test]
    fn segment_check_equals_bit_equality(
        data in 0u64..65536,
        qword in 0u64..256,
        r in 0usize..8,
    ) {
        // An 8-bit query at offset r within a 16-bit segment.
        let qbits: Vec<bool> = (0..8).map(|j| (qword >> (7 - j)) & 1 == 1).collect();
        let q = BitString::from_bits(&qbits);
        let class = &alignment_classes(&q, 16)[r];
        prop_assume!(class.window_segs == 1);
        let sum = (data + class.neg_segments[0]) & 0xFFFF;
        let got = segment_matches(sum, class.masks[0], 16);
        let expect = (0..8).all(|j| {
            let dbit = (data >> (15 - (r + j))) & 1 == 1;
            dbit == qbits[j]
        });
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn plaintext_pipeline_equals_ground_truth(
        db in arb_bits(700),
        qlen in 1usize..48,
        at in 0usize..512,
    ) {
        // The full query-prep -> sum -> index-gen pipeline evaluated on
        // plaintext sums must agree with naive matching for any input.
        let db = BitString::from_bits(&db);
        prop_assume!(db.len() > qlen + 1);
        let at = at % (db.len() - qlen);
        let q = db.slice(at, qlen);
        let n = 8usize;
        let seg_bits = 16usize;
        let classes = alignment_classes(&q, seg_bits);
        let variants = build_variants(&classes, n);
        let polys = db.segment_count(seg_bits).div_ceil(n).max(1);
        let mut table = SumTable::new();
        for v in &variants {
            let sums: Vec<Vec<u64>> = (0..polys)
                .map(|j| {
                    (0..n)
                        .map(|c| {
                            let d = db.segment_value(j * n + c, seg_bits);
                            (d + v.plaintext.coeffs()[c]) % (1 << seg_bits)
                        })
                        .collect()
                })
                .collect();
            table.insert(v.r, v.phase, sums);
        }
        let got = generate_indices(&classes, &table, n, seg_bits, db.len(), q.len());
        prop_assert_eq!(got, db.find_all(&q));
    }
}
