//! Property-based tests of the CIPHERMATCH core: packing round-trips,
//! alignment-class soundness, full-match agreement with the plaintext
//! reference on random inputs, and the `cm_core::exec` runtime's
//! completion-handle contract (drop-before-complete detaches, a panicked
//! job surfaces as a typed error and never kills its worker).

use cm_bfv::{BfvContext, BfvParams};
use cm_core::{
    alignment_classes, bitwise_find_all, build_variants, generate_indices, segment_matches,
    BitString, DensePacking, MatchError, SumTable, WorkerPool,
};
use proptest::prelude::*;

fn arb_bits(max_len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_packing_roundtrips(bits in arb_bits(4000)) {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let p = DensePacking::new(&ctx);
        let data = BitString::from_bits(&bits);
        let polys = p.pack(&data);
        prop_assert_eq!(p.unpack(&polys, data.len()), data);
    }

    #[test]
    fn bitwise_matcher_equals_naive(db in arb_bits(600), qlen in 1usize..64, at in 0usize..512) {
        let db = BitString::from_bits(&db);
        prop_assume!(db.len() > qlen);
        let at = at % (db.len() - qlen);
        let q = db.slice(at, qlen);
        prop_assert_eq!(bitwise_find_all(&db, &q), db.find_all(&q));
    }

    #[test]
    fn alignment_masks_partition_window_bits(qbits in arb_bits(80)) {
        let q = BitString::from_bits(&qbits);
        for class in alignment_classes(&q, 16) {
            // Covered + masked bits = the full window; they never overlap.
            let mut covered = 0usize;
            for (i, &mask) in class.masks.iter().enumerate() {
                let dontcare = mask.count_ones() as usize;
                covered += 16 - dontcare;
                prop_assert_eq!(class.neg_segments[i] & mask, 0, "segment {} overlaps", i);
            }
            prop_assert_eq!(covered, q.len(), "r={}", class.r);
        }
    }

    #[test]
    fn segment_check_equals_bit_equality(
        data in 0u64..65536,
        qword in 0u64..256,
        r in 0usize..8,
    ) {
        // An 8-bit query at offset r within a 16-bit segment.
        let qbits: Vec<bool> = (0..8).map(|j| (qword >> (7 - j)) & 1 == 1).collect();
        let q = BitString::from_bits(&qbits);
        let class = &alignment_classes(&q, 16)[r];
        prop_assume!(class.window_segs == 1);
        let sum = (data + class.neg_segments[0]) & 0xFFFF;
        let got = segment_matches(sum, class.masks[0], 16);
        let expect = (0..8).all(|j| {
            let dbit = (data >> (15 - (r + j))) & 1 == 1;
            dbit == qbits[j]
        });
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn plaintext_pipeline_equals_ground_truth(
        db in arb_bits(700),
        qlen in 1usize..48,
        at in 0usize..512,
    ) {
        // The full query-prep -> sum -> index-gen pipeline evaluated on
        // plaintext sums must agree with naive matching for any input.
        let db = BitString::from_bits(&db);
        prop_assume!(db.len() > qlen + 1);
        let at = at % (db.len() - qlen);
        let q = db.slice(at, qlen);
        let n = 8usize;
        let seg_bits = 16usize;
        let classes = alignment_classes(&q, seg_bits);
        let variants = build_variants(&classes, n);
        let polys = db.segment_count(seg_bits).div_ceil(n).max(1);
        let mut table = SumTable::new();
        for v in &variants {
            let sums: Vec<Vec<u64>> = (0..polys)
                .map(|j| {
                    (0..n)
                        .map(|c| {
                            let d = db.segment_value(j * n + c, seg_bits);
                            (d + v.plaintext.coeffs()[c]) % (1 << seg_bits)
                        })
                        .collect()
                })
                .collect();
            table.insert(v.r, v.phase, sums);
        }
        let got = generate_indices(&classes, &table, n, seg_bits, db.len(), q.len());
        prop_assert_eq!(got, db.find_all(&q));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn handles_dropped_before_completion_detach_cleanly(
        jobs in 1usize..24,
        workers in 1usize..5,
        keep_mask in any::<u64>(),
    ) {
        // Dropping a CompletionHandle detaches its job: every job still
        // runs (the counter proves it), kept handles still deliver their
        // results, and the pool's drop drains without hanging or
        // panicking.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let ran = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(workers).unwrap();
            let mut kept = Vec::new();
            for i in 0..jobs {
                let ran = Arc::clone(&ran);
                let handle = pool.submit(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    i * 3
                });
                if keep_mask >> (i % 64) & 1 == 1 {
                    kept.push((i, handle));
                } else {
                    drop(handle); // detach before (possible) completion
                }
            }
            for (i, handle) in kept {
                prop_assert_eq!(handle.wait(), Ok(i * 3));
            }
        }
        prop_assert_eq!(ran.load(Ordering::SeqCst), jobs);
    }

    #[test]
    fn completion_after_panic_is_typed_and_leaves_the_pool_alive(
        jobs in 1usize..16,
        panic_stride in 2usize..5,
    ) {
        let pool = WorkerPool::new(2).unwrap();
        let handles: Vec<_> = (0..jobs)
            .map(|i| {
                pool.submit(move || {
                    assert!(i % panic_stride != 0, "job {i} panics by design");
                    i
                })
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            if i % panic_stride == 0 {
                prop_assert_eq!(handle.wait(), Err(MatchError::WorkerPanicked));
            } else {
                prop_assert_eq!(handle.wait(), Ok(i));
            }
        }
        // Workers survive panicking jobs: the pool still executes.
        prop_assert_eq!(pool.submit(|| 41 + 1).wait(), Ok(42));
    }
}
