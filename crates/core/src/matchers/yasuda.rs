//! The arithmetic baseline: Yasuda et al. \[27\] secure Hamming-distance
//! matching (paper §2.2 "Arithmetic Approach", §3.1).
//!
//! Database blocks use single-bit "type 1" packing, the query uses the
//! reversed-negated "type 2" packing; one ciphertext-ciphertext
//! multiplication then yields the inner products of *all* alignments in a
//! block at once. The Hamming distance
//! `HD(i) = HW_window(d, i) + HW(q) - 2 * IP(i)`
//! costs **two homomorphic multiplications and three additions** per
//! block — the multiplication dominance Figure 2c measures (98.2%).

use std::time::Instant;

use cm_bfv::{BfvContext, Ciphertext, Decryptor, Encryptor, Evaluator};
use rand::Rng;

use crate::api::MatchStats;
use crate::bits::BitString;
use crate::packing::SingleBitPacking;

/// The encrypted single-bit-packed database (overlapping blocks).
#[derive(Debug, Clone)]
pub struct YasudaDatabase {
    blocks: Vec<Ciphertext>,
    total_bits: usize,
    /// The window width the blocks were laid out for.
    k: usize,
}

impl YasudaDatabase {
    /// Number of encrypted blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The fixed window width (query bits) the blocks were laid out for.
    pub fn window(&self) -> usize {
        self.k
    }

    /// Total encrypted footprint in bytes (Fig. 2a).
    pub fn byte_size(&self, q_bits: u32) -> usize {
        self.blocks.iter().map(|ct| ct.byte_size(q_bits)).sum()
    }
}

/// The encrypted query (type-2 packed) plus the encrypted all-ones window.
#[derive(Debug, Clone)]
pub struct YasudaQuery {
    query_ct: Ciphertext,
    ones_ct: Ciphertext,
    hamming_weight: u64,
    k: usize,
}

impl YasudaQuery {
    /// Query length in bits.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total encrypted footprint in bytes (query plus all-ones window).
    pub fn byte_size(&self, q_bits: u32) -> usize {
        self.query_ct.byte_size(q_bits) + self.ones_ct.byte_size(q_bits)
    }
}

/// The Yasuda secure-matching engine.
#[derive(Debug, Clone)]
pub struct YasudaEngine {
    ctx: BfvContext,
    packing: SingleBitPacking,
    evaluator: Evaluator,
    stats: MatchStats,
}

impl YasudaEngine {
    /// Creates an engine; use multiplication-capable parameters
    /// ([`cm_bfv::BfvParams::arithmetic_2048`]).
    pub fn new(ctx: &BfvContext) -> Self {
        Self {
            ctx: ctx.clone(),
            packing: SingleBitPacking::new(ctx),
            evaluator: Evaluator::new(ctx),
            stats: MatchStats::default(),
        }
    }

    /// Statistics accumulated so far: `hom_muls`/`mul_time` dominate
    /// (Fig. 2c's 98.2%), `hom_adds`/`add_time` carry the rest.
    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
    }

    /// Encrypts the database as overlapping single-bit-packed blocks sized
    /// for queries of length `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the ring degree.
    pub fn encrypt_database<R: Rng + ?Sized>(
        &self,
        enc: &Encryptor<'_>,
        data: &BitString,
        k: usize,
        rng: &mut R,
    ) -> YasudaDatabase {
        assert!(k > 0 && k <= self.ctx.params().n, "invalid window width");
        let blocks = (0..self.packing.block_count(data.len(), k))
            .map(|b| {
                let start = self.packing.block_start(b, k);
                enc.encrypt(&self.packing.pack_block(data, start), rng)
            })
            .collect();
        YasudaDatabase {
            blocks,
            total_bits: data.len(),
            k,
        }
    }

    /// Encrypts a query with type-2 packing (plus the all-ones window used
    /// for the windowed Hamming weight).
    pub fn prepare_query<R: Rng + ?Sized>(
        &self,
        enc: &Encryptor<'_>,
        query: &BitString,
        rng: &mut R,
    ) -> YasudaQuery {
        let t = self.ctx.params().t;
        let query_ct = enc.encrypt(&self.packing.pack_query(query, t), rng);
        let ones_ct = enc.encrypt(&self.packing.pack_ones_window(query.len(), t), rng);
        let hamming_weight = (0..query.len()).filter(|&j| query.get(j)).count() as u64;
        YasudaQuery {
            query_ct,
            ones_ct,
            hamming_weight,
            k: query.len(),
        }
    }

    /// Computes the encrypted Hamming-distance polynomial of one block:
    /// `HD = M (x) Ones + HW(q) - 2 * (M (x) Q)`.
    fn block_hd(&mut self, block: &Ciphertext, query: &YasudaQuery) -> Ciphertext {
        let ev = &self.evaluator;

        let t0 = Instant::now();
        let ip = ev.multiply(block, &query.query_ct);
        let hw_win = ev.multiply(block, &query.ones_ct);
        self.stats.mul_time += t0.elapsed();
        self.stats.hom_muls += 2;

        let t1 = Instant::now();
        let neg2ip = ev.scale_signed(&ip, -2);
        let sum = ev.add(&hw_win, &neg2ip);
        let hw_q = cm_bfv::Plaintext::from_poly(cm_hemath::Poly::from_coeffs({
            let mut c = vec![0u64; self.ctx.params().n];
            c[0] = query.hamming_weight % self.ctx.params().t;
            // HW(q) must be added to every alignment's coefficient.
            for x in c.iter_mut() {
                *x = query.hamming_weight % self.ctx.params().t;
            }
            c
        }));
        let hd = ev.add_plain(&sum, &hw_q);
        self.stats.add_time += t1.elapsed();
        self.stats.hom_adds += 3;
        hd
    }

    /// Full secure search: per block, 2 Hom-Mul + 3 Hom-Add, then decrypt
    /// the HD polynomial and report zero-distance alignments.
    pub fn find_all<R: Rng + ?Sized>(
        &mut self,
        enc: &Encryptor<'_>,
        dec: &Decryptor<'_>,
        db: &YasudaDatabase,
        query: &BitString,
        rng: &mut R,
    ) -> Vec<usize> {
        self.find_within_distance(enc, dec, db, query, 0, rng)
            .into_iter()
            .map(|(offset, _)| offset)
            .collect()
    }

    /// Approximate secure search: alignments whose Hamming distance to the
    /// query is at most `max_distance`, with the distances. This is the
    /// capability Yasuda et al. built their scheme for (the paper's §2.2
    /// notes the arithmetic approach covers "approximate or exact"
    /// matching) — CIPHERMATCH's addition-only trick, by contrast, is
    /// exact-only.
    ///
    /// # Panics
    ///
    /// Panics if the query length differs from the database layout, or
    /// `max_distance` is not representable below the plaintext modulus.
    pub fn find_within_distance<R: Rng + ?Sized>(
        &mut self,
        enc: &Encryptor<'_>,
        dec: &Decryptor<'_>,
        db: &YasudaDatabase,
        query: &BitString,
        max_distance: u64,
        rng: &mut R,
    ) -> Vec<(usize, u64)> {
        assert_eq!(
            query.len(),
            db.k,
            "database blocks were laid out for k = {}",
            db.k
        );
        let q = self.prepare_query(enc, query, rng);
        self.search_prepared(dec, db, &q, max_distance)
    }

    /// Distance search over an already-encrypted query (the server/worker
    /// half of [`Self::find_within_distance`]): per block, 2 Hom-Mul +
    /// 3 Hom-Add, then decrypt the HD polynomial and keep alignments
    /// within `max_distance`.
    ///
    /// # Panics
    ///
    /// Panics if the query length differs from the database layout, or
    /// `max_distance` is not representable below the plaintext modulus.
    pub fn search_prepared(
        &mut self,
        dec: &Decryptor<'_>,
        db: &YasudaDatabase,
        q: &YasudaQuery,
        max_distance: u64,
    ) -> Vec<(usize, u64)> {
        assert_eq!(q.k, db.k, "database blocks were laid out for k = {}", db.k);
        assert!(
            max_distance < self.ctx.params().t / 2,
            "distance threshold must stay below t/2 to be unambiguous"
        );
        let n = self.ctx.params().n;
        let mut matches = Vec::new();
        for (b, block) in db.blocks.iter().enumerate() {
            let hd_ct = self.block_hd(block, q);
            let hd = dec.decrypt(&hd_ct);
            let start = self.packing.block_start(b, q.k);
            let span = (n - q.k + 1).min(db.total_bits.saturating_sub(start + q.k) + 1);
            for i in 0..span {
                if hd.coeffs()[i] <= max_distance {
                    matches.push((start + i, hd.coeffs()[i]));
                }
            }
        }
        matches.sort_unstable();
        matches.dedup();
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_bfv::{BfvParams, KeyGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(db_bits: &BitString, query_bits: &BitString) -> (Vec<usize>, MatchStats) {
        let ctx = BfvContext::new(BfvParams::insecure_test_mul());
        let mut rng = StdRng::seed_from_u64(4242);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let mut engine = YasudaEngine::new(&ctx);
        let db = engine.encrypt_database(&enc, db_bits, query_bits.len(), &mut rng);
        let got = engine.find_all(&enc, &dec, &db, query_bits, &mut rng);
        (got, engine.stats())
    }

    #[test]
    fn finds_matches_at_any_bit_offset() {
        let db = BitString::from_ascii("homomorphic hamming distance");
        for (start, len) in [(0usize, 16usize), (5, 11), (100, 30)] {
            let q = db.slice(start, len);
            let (got, _) = run(&db, &q);
            assert_eq!(got, db.find_all(&q), "slice ({start}, {len})");
        }
    }

    #[test]
    fn no_false_positives() {
        let db = BitString::from_ascii("zzzzzzzzzzzz");
        let q = BitString::from_ascii("ab");
        let (got, _) = run(&db, &q);
        assert!(got.is_empty());
    }

    #[test]
    fn multi_block_database_with_overlap() {
        // n = 256 -> blocks overlap by k - 1; verify windows across block
        // seams are found exactly once.
        let bytes: Vec<u8> = (0..80u32).map(|i| (i * 37 % 251) as u8).collect();
        let db = BitString::from_bytes(&bytes);
        let q = db.slice(250, 17); // straddles the first block boundary
        let (got, _) = run(&db, &q);
        assert_eq!(got, db.find_all(&q));
    }

    #[test]
    fn cost_is_two_mults_three_adds_per_block() {
        let db = BitString::from_bits(&[false; 600]);
        let q = BitString::from_bits(&[true; 8]);
        let (_, stats) = run(&db, &q);
        let blocks = (600 - 8 + 1 + (256 - 8)) / (256 - 7); // ceil
        assert_eq!(stats.hom_muls, 2 * blocks as u64);
        assert_eq!(stats.hom_adds, 3 * blocks as u64);
    }

    #[test]
    fn approximate_matching_reports_distances() {
        // Corrupt two bits of an embedded pattern: exact search misses it,
        // distance-2 search finds it and reports HD = 2.
        let ctx = BfvContext::new(BfvParams::insecure_test_mul());
        let mut rng = StdRng::seed_from_u64(515);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let mut engine = YasudaEngine::new(&ctx);

        let db = BitString::from_ascii("approximate hamming distance search");
        let mut noisy: Vec<bool> = db.slice(2 * 8, 24).bits().to_vec();
        noisy[3] = !noisy[3];
        noisy[17] = !noisy[17];
        let q = BitString::from_bits(&noisy);

        let ydb = engine.encrypt_database(&enc, &db, q.len(), &mut rng);
        let exact = engine.find_all(&enc, &dec, &ydb, &q, &mut rng);
        assert!(exact.is_empty(), "corrupted query must not match exactly");
        let approx = engine.find_within_distance(&enc, &dec, &ydb, &q, 2, &mut rng);
        assert!(approx.contains(&(16, 2)), "expected (16, 2) in {approx:?}");
        // Tightening the threshold excludes it again.
        let tight = engine.find_within_distance(&enc, &dec, &ydb, &q, 1, &mut rng);
        assert!(!tight.iter().any(|&(o, _)| o == 16));
    }

    #[test]
    fn multiplication_dominates_latency() {
        let db = BitString::from_bits(&[true; 2000]);
        let q = BitString::from_bits(&[true; 32]);
        let (_, stats) = run(&db, &q);
        assert!(
            stats.mult_fraction() > 0.5,
            "expected mult-dominated latency, got {:.1}%",
            100.0 * stats.mult_fraction()
        );
    }
}
