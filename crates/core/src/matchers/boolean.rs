//! The Boolean baseline: per-bit TFHE encryption with XNOR + AND matching
//! (paper §2.2 "Boolean Approach"; Aziz et al. \[17\], Pradel et al. \[33\]).
//!
//! Every database and query bit is one LWE ciphertext. A window of width
//! `k` matches when all `k` XNORs are true, established with an AND
//! reduction — `2k - 1` bootstrapped gates per window. Both the gate
//! counts (for the analytical model) and a fully functional matcher (used
//! with fast parameters in tests) live here.

use cm_tfhe::{BitCiphertext, ClientKey, ServerKey};
use rand::Rng;

use crate::bits::BitString;

/// A per-bit-encrypted database.
#[derive(Debug, Clone)]
pub struct BooleanDatabase {
    bits: Vec<BitCiphertext>,
}

impl BooleanDatabase {
    /// Number of encrypted bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Encrypted footprint in bytes (`(n+1)` u32 words per bit; Fig. 2a).
    pub fn byte_size(&self, lwe_dim: usize) -> usize {
        self.bits.len() * (lwe_dim + 1) * 4
    }
}

/// Gate-count model for one exact search (used at scales where running
/// every bootstrap is impractical — exactly how the paper's Fig. 7–9 treat
/// the Boolean baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BooleanGateCount {
    /// Homomorphic XNOR gates.
    pub xnor: u64,
    /// Homomorphic AND gates.
    pub and: u64,
}

impl BooleanGateCount {
    /// Gates for matching a `k`-bit query against an `m`-bit database:
    /// `m - k + 1` windows, each `k` XNOR + `k - 1` AND.
    pub fn for_search(db_bits: usize, k: usize) -> Self {
        if k == 0 || db_bits < k {
            return Self { xnor: 0, and: 0 };
        }
        let windows = (db_bits - k + 1) as u64;
        Self {
            xnor: windows * k as u64,
            and: windows * (k as u64 - 1),
        }
    }

    /// Total bootstrapped gates.
    pub fn total(&self) -> u64 {
        self.xnor + self.and
    }
}

/// The functional Boolean matching engine.
#[derive(Debug)]
pub struct BooleanEngine<'k> {
    client: &'k ClientKey,
    server: &'k ServerKey,
}

impl<'k> BooleanEngine<'k> {
    /// Creates an engine around existing TFHE keys.
    pub fn new(client: &'k ClientKey, server: &'k ServerKey) -> Self {
        Self { client, server }
    }

    /// Encrypts the database bit by bit.
    pub fn encrypt_database<R: Rng + ?Sized>(
        &self,
        data: &BitString,
        rng: &mut R,
    ) -> BooleanDatabase {
        BooleanDatabase {
            bits: self.client.encrypt_bits(data.bits(), rng),
        }
    }

    /// Encrypts the query bit by bit.
    pub fn encrypt_query<R: Rng + ?Sized>(
        &self,
        query: &BitString,
        rng: &mut R,
    ) -> Vec<BitCiphertext> {
        self.client.encrypt_bits(query.bits(), rng)
    }

    /// Evaluates one window: AND-reduce of per-bit XNORs
    /// (`2k - 1` bootstraps).
    pub fn match_window(
        &self,
        db: &BooleanDatabase,
        query: &[BitCiphertext],
        offset: usize,
    ) -> BitCiphertext {
        let eqs: Vec<BitCiphertext> = query
            .iter()
            .enumerate()
            .map(|(j, qb)| self.server.xnor(&db.bits[offset + j], qb))
            .collect();
        self.server.and_reduce(&eqs)
    }

    /// Full search: evaluates every window and decrypts the match flags.
    /// Exhaustive traversal of the encrypted database — the latency
    /// bottleneck the paper attributes to the Boolean approach.
    pub fn find_all<R: Rng + ?Sized>(
        &self,
        db: &BooleanDatabase,
        query: &BitString,
        rng: &mut R,
    ) -> Vec<usize> {
        let k = query.len();
        if k == 0 || db.len() < k {
            return Vec::new();
        }
        let q = self.encrypt_query(query, rng);
        (0..=db.len() - k)
            .filter(|&o| self.client.decrypt(&self.match_window(db, &q, o)))
            .collect()
    }

    /// Batched search: windows evaluated concurrently across worker
    /// threads — the "SIMD batching" that distinguishes Aziz et al. \[17\]
    /// from Pradel et al. \[33\] in Table 1 (gate *count* is unchanged;
    /// only wall time improves).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn find_all_batched<R: Rng + ?Sized>(
        &self,
        db: &BooleanDatabase,
        query: &BitString,
        threads: usize,
        rng: &mut R,
    ) -> Vec<usize> {
        assert!(threads > 0, "at least one thread required");
        let k = query.len();
        if k == 0 || db.len() < k {
            return Vec::new();
        }
        let q = self.encrypt_query(query, rng);
        let windows: Vec<usize> = (0..=db.len() - k).collect();
        let q = &q;
        let mut matches: Vec<usize> = crate::exec::fan_out(&windows, threads, |chunk| {
            chunk
                .iter()
                .filter(|&&o| self.client.decrypt(&self.match_window(db, q, o)))
                .copied()
                .collect::<Vec<_>>()
        })
        .expect("boolean worker panicked")
        .into_iter()
        .flatten()
        .collect();
        matches.sort_unstable();
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_tfhe::TfheParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> (ClientKey, ServerKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(31337);
        let ck = ClientKey::generate(TfheParams::fast_insecure_test(), &mut rng);
        let sk = ServerKey::generate(&ck, &mut rng);
        (ck, sk, rng)
    }

    #[test]
    fn finds_matches_like_plaintext() {
        let (ck, sk, mut rng) = keys();
        let engine = BooleanEngine::new(&ck, &sk);
        let db_bits = BitString::from_bits(&[
            true, false, true, true, false, true, true, false, false, true, true, false,
        ]);
        let query = BitString::from_bits(&[true, true, false]);
        let db = engine.encrypt_database(&db_bits, &mut rng);
        let got = engine.find_all(&db, &query, &mut rng);
        assert_eq!(got, db_bits.find_all(&query));
    }

    #[test]
    fn batched_search_equals_serial() {
        let (ck, sk, mut rng) = keys();
        let engine = BooleanEngine::new(&ck, &sk);
        let db_bits = BitString::from_bytes(&[0xDE, 0xAD]);
        let query = BitString::from_bits(&[true, false, true]);
        let db = engine.encrypt_database(&db_bits, &mut rng);
        let serial = engine.find_all(&db, &query, &mut StdRng::seed_from_u64(1));
        for threads in [1usize, 3, 8] {
            let got = engine.find_all_batched(&db, &query, threads, &mut StdRng::seed_from_u64(1));
            assert_eq!(got, serial, "threads = {threads}");
        }
        assert_eq!(serial, db_bits.find_all(&query));
    }

    #[test]
    fn gate_count_matches_execution() {
        let (ck, sk, mut rng) = keys();
        let engine = BooleanEngine::new(&ck, &sk);
        let db_bits = BitString::from_bits(&[true; 10]);
        let query = BitString::from_bits(&[true, true, true, true]);
        let db = engine.encrypt_database(&db_bits, &mut rng);
        let before = sk.bootstrap_count();
        let _ = engine.find_all(&db, &query, &mut rng);
        let used = sk.bootstrap_count() - before;
        let model = BooleanGateCount::for_search(10, 4);
        assert_eq!(used, model.total());
        assert_eq!(model.xnor, 7 * 4);
        assert_eq!(model.and, 7 * 3);
    }

    #[test]
    fn gate_count_model_edge_cases() {
        assert_eq!(BooleanGateCount::for_search(10, 0).total(), 0);
        assert_eq!(BooleanGateCount::for_search(3, 5).total(), 0);
        let one = BooleanGateCount::for_search(5, 1);
        assert_eq!(one.xnor, 5);
        assert_eq!(one.and, 0);
    }

    #[test]
    fn footprint_blowup_is_large() {
        let (ck, sk, mut rng) = keys();
        let engine = BooleanEngine::new(&ck, &sk);
        let db_bits = BitString::from_bytes(&[0xAB; 4]); // 32 bits = 4 bytes
        let db = engine.encrypt_database(&db_bits, &mut rng);
        let blowup = db.byte_size(ck.params().lwe_dim) / 4;
        assert!(
            blowup > 200,
            "Boolean blow-up should exceed 200x, got {blowup}x"
        );
    }
}
