//! The SIMD-batched arithmetic baseline (Kim et al. \[34\] / Bonte et
//! al. \[29\] style; paper §2.2, Table 1).
//!
//! Database symbols are batch-encoded into plaintext *slots*; for a query
//! of `L` symbols the server computes, for every alignment `a` at once,
//! the squared-difference score `sum_j (db[a+j] - q[j])^2` using `L`
//! homomorphic rotations and `L` ciphertext squarings — the "expensive
//! homomorphic operations" Table 1 attributes to these works, in exchange
//! for SIMD scalability.
//!
//! Simplifications vs the original HomEQ circuit (documented in
//! DESIGN.md): the full Fermat-based equality (depth `log t`) is replaced
//! by the depth-1 squared-difference score, so a vanishing fraction of
//! non-matches (score ≡ 0 mod t by coincidence, probability ~L·255²/t per
//! alignment) would need client-side re-checking — the structure and cost
//! profile (rotations + multiplications, fixed query sizes) are faithful.

use std::time::Instant;

use cm_bfv::{
    BatchEncoder, BfvContext, Ciphertext, Decryptor, Encryptor, Evaluator, GaloisKeys, RelinKey,
};
use rand::Rng;

use crate::api::MatchStats;

/// The batched database: overlapping blocks of slot-encoded symbols.
#[derive(Debug, Clone)]
pub struct BatchedDatabase {
    blocks: Vec<Ciphertext>,
    block_starts: Vec<usize>,
    total_symbols: usize,
    max_query: usize,
}

impl BatchedDatabase {
    /// Number of encrypted blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The maximum query length (symbols) the blocks were provisioned for.
    pub fn max_query(&self) -> usize {
        self.max_query
    }

    /// Total encrypted footprint in bytes (Fig. 2a's axis).
    pub fn byte_size(&self, q_bits: u32) -> usize {
        self.blocks.iter().map(|ct| ct.byte_size(q_bits)).sum()
    }
}

/// The SIMD-batched matching engine.
#[derive(Debug, Clone)]
pub struct BatchedEngine {
    ctx: BfvContext,
    encoder: BatchEncoder,
    evaluator: Evaluator,
    stats: MatchStats,
}

impl BatchedEngine {
    /// Creates an engine; requires batching-capable parameters
    /// ([`cm_bfv::BfvParams::batching_1024`] or the test preset).
    ///
    /// # Panics
    ///
    /// Panics if the plaintext modulus does not support batching.
    pub fn new(ctx: &BfvContext) -> Self {
        Self {
            ctx: ctx.clone(),
            encoder: BatchEncoder::new(ctx),
            evaluator: Evaluator::new(ctx),
            stats: MatchStats::default(),
        }
    }

    /// Statistics accumulated so far: `hom_muls` (squarings), `rotations`,
    /// and `hom_adds` — the "expensive homomorphic operations" Table 1
    /// attributes to the SIMD-batched approaches.
    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
    }

    /// Usable slots per block: rotations act within one batching row, so
    /// data occupies the first row (`n/2` slots).
    pub fn slots_per_block(&self) -> usize {
        self.ctx.params().n / 2
    }

    /// Encrypts a symbol sequence (each `< t`) into overlapping blocks
    /// sized for queries of up to `max_query` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `max_query` is zero or exceeds the block width, or a
    /// symbol exceeds the plaintext modulus.
    pub fn encrypt_database<R: Rng + ?Sized>(
        &self,
        enc: &Encryptor<'_>,
        symbols: &[u64],
        max_query: usize,
        rng: &mut R,
    ) -> BatchedDatabase {
        let slots = self.slots_per_block();
        assert!(
            max_query > 0 && max_query <= slots,
            "invalid max query length"
        );
        let t = self.ctx.params().t;
        assert!(
            symbols.iter().all(|&s| s < t),
            "symbols must be reduced mod t"
        );
        let stride = slots - (max_query - 1);
        let mut blocks = Vec::new();
        let mut block_starts = Vec::new();
        let mut start = 0usize;
        loop {
            let end = (start + slots).min(symbols.len());
            let mut values = symbols[start..end].to_vec();
            values.resize(slots, t - 1); // pad with an unlikely sentinel
            blocks.push(enc.encrypt(&self.encoder.encode(&values), rng));
            block_starts.push(start);
            if end >= symbols.len() {
                break;
            }
            start += stride;
        }
        BatchedDatabase {
            blocks,
            block_starts,
            total_symbols: symbols.len(),
            max_query,
        }
    }

    /// Computes an encrypted weighted squared-difference score polynomial
    /// of one block: `L` rotations + `L` squarings + `L` additions.
    ///
    /// `weights[j]` multiplies term `j`; two scores with independent small
    /// random weights drive the per-alignment false-positive probability
    /// to ~`1/t^2` (the standard amplification for mod-`t` score
    /// collisions).
    fn block_scores(
        &mut self,
        block: &Ciphertext,
        query: &[u64],
        weights: &[i64],
        rk: &RelinKey,
        gk: &GaloisKeys,
    ) -> Ciphertext {
        let ev = &self.evaluator;
        let slots = self.encoder.slot_count();
        let mut acc: Option<Ciphertext> = None;
        for (j, &qj) in query.iter().enumerate() {
            // Square first, rotate after: rot_j((D - q_j)^2)[a] =
            // (D[a+j] - q_j)^2, and multiplying *fresh* ciphertexts keeps
            // the key-switch noise of the rotation out of the product.
            let broadcast = self.encoder.encode(&vec![qj; slots]);
            let t0 = Instant::now();
            let diff = ev.sub_plain(block, &broadcast);
            self.stats.add_time += t0.elapsed();
            self.stats.hom_adds += 1;
            let t1 = Instant::now();
            let sq = ev.relinearize(&ev.multiply(&diff, &diff), rk);
            let weighted = ev.scale_signed(&sq, weights[j]);
            let rotated = ev.rotate_rows(&weighted, j as i64, gk);
            self.stats.mul_time += t1.elapsed();
            self.stats.hom_muls += 1;
            self.stats.rotations += 1;
            let t2 = Instant::now();
            acc = Some(match acc {
                None => rotated,
                Some(a) => {
                    self.stats.hom_adds += 1;
                    ev.add(&a, &rotated)
                }
            });
            self.stats.add_time += t2.elapsed();
        }
        acc.expect("query must be non-empty")
    }

    /// Full search: returns the symbol offsets where `query` occurs.
    ///
    /// # Panics
    ///
    /// Panics if the query is empty or longer than the database blocks
    /// were provisioned for (`max_query`) — the fixed-query-size
    /// restriction of Table 1.
    #[allow(clippy::too_many_arguments)]
    pub fn find_all<R: Rng + ?Sized>(
        &mut self,
        _enc: &Encryptor<'_>,
        dec: &Decryptor<'_>,
        rk: &RelinKey,
        gk: &GaloisKeys,
        db: &BatchedDatabase,
        query: &[u64],
        rng: &mut R,
    ) -> Vec<usize> {
        assert!(!query.is_empty(), "query must be non-empty");
        assert!(
            query.len() <= db.max_query,
            "blocks were provisioned for queries up to {} symbols (Table 1: \
             arithmetic approaches fix the query size)",
            db.max_query
        );
        // Two independent small weight vectors: a non-match passes both
        // zero tests with probability ~1/t^2.
        let w1: Vec<i64> = (0..query.len()).map(|_| rng.gen_range(1..=7)).collect();
        let w2: Vec<i64> = (0..query.len()).map(|_| rng.gen_range(1..=7)).collect();
        let slots = self.slots_per_block();
        let mut matches = Vec::new();
        for (block, &start) in db.blocks.iter().zip(&db.block_starts) {
            let score1 = self.block_scores(block, query, &w1, rk, gk);
            let s1 = self.encoder.decode(&dec.decrypt(&score1));
            let score2 = self.block_scores(block, query, &w2, rk, gk);
            let s2 = self.encoder.decode(&dec.decrypt(&score2));
            let span = slots - query.len() + 1;
            for a in 0..span {
                let global = start + a;
                if global + query.len() > db.total_symbols {
                    break;
                }
                if s1[a] == 0 && s2[a] == 0 {
                    matches.push(global);
                }
            }
        }
        matches.sort_unstable();
        matches.dedup();
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_bfv::{BfvParams, KeyGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        ctx: BfvContext,
        sk: cm_bfv::SecretKey,
        pk: cm_bfv::PublicKey,
        rk: RelinKey,
        gk: GaloisKeys,
    }

    fn fixture(seed: u64, max_rot: usize) -> Fixture {
        let ctx = BfvContext::new(BfvParams::insecure_test_batch());
        let mut rng = StdRng::seed_from_u64(seed);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let pk = kg.public_key(&mut rng);
        let rk = kg.relin_key(&mut rng);
        // Keys for rotations 1..=max_rot.
        let gk = kg.galois_keys(&kg.galois_elements_for_rotations(max_rot + 1), &mut rng);
        Fixture {
            ctx,
            sk,
            pk,
            rk,
            gk,
        }
    }

    fn ascii_symbols(s: &str) -> Vec<u64> {
        s.bytes().map(|b| b as u64).collect()
    }

    fn plain_find(symbols: &[u64], query: &[u64]) -> Vec<usize> {
        if query.is_empty() || query.len() > symbols.len() {
            return Vec::new();
        }
        (0..=symbols.len() - query.len())
            .filter(|&a| (0..query.len()).all(|j| symbols[a + j] == query[j]))
            .collect()
    }

    #[test]
    fn batched_search_finds_symbol_matches() {
        let f = fixture(1, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let enc = Encryptor::new(&f.ctx, f.pk.clone());
        let dec = Decryptor::new(&f.ctx, f.sk.clone());
        let mut engine = BatchedEngine::new(&f.ctx);
        let symbols = ascii_symbols("the batched matcher rotates and squares the batch");
        let db = engine.encrypt_database(&enc, &symbols, 8, &mut rng);
        for needle in ["batch", "the", "squares", "absent!"] {
            let q = ascii_symbols(needle);
            let got = engine.find_all(&enc, &dec, &f.rk, &f.gk, &db, &q, &mut rng);
            assert_eq!(got, plain_find(&symbols, &q), "needle {needle}");
        }
    }

    #[test]
    fn multi_block_database_with_overlap() {
        let f = fixture(3, 6);
        let mut rng = StdRng::seed_from_u64(4);
        let enc = Encryptor::new(&f.ctx, f.pk.clone());
        let dec = Decryptor::new(&f.ctx, f.sk.clone());
        let mut engine = BatchedEngine::new(&f.ctx);
        // Longer than one block (128 usable slots with n = 256).
        let text: String = (0..300)
            .map(|i| (b'a' + (i * 7 % 26) as u8) as char)
            .collect();
        let symbols = ascii_symbols(&text);
        let db = engine.encrypt_database(&enc, &symbols, 6, &mut rng);
        assert!(db.block_count() >= 2, "must span blocks");
        // A needle straddling the first block boundary.
        let q: Vec<u64> = symbols[125..131].to_vec();
        let got = engine.find_all(&enc, &dec, &f.rk, &f.gk, &db, &q, &mut rng);
        assert_eq!(got, plain_find(&symbols, &q));
    }

    #[test]
    #[should_panic(expected = "provisioned for queries up to")]
    fn fixed_query_size_is_enforced() {
        let f = fixture(5, 4);
        let mut rng = StdRng::seed_from_u64(6);
        let enc = Encryptor::new(&f.ctx, f.pk.clone());
        let dec = Decryptor::new(&f.ctx, f.sk.clone());
        let mut engine = BatchedEngine::new(&f.ctx);
        let symbols = ascii_symbols("short provision");
        let db = engine.encrypt_database(&enc, &symbols, 4, &mut rng);
        let q = ascii_symbols("toolong");
        let _ = engine.find_all(&enc, &dec, &f.rk, &f.gk, &db, &q, &mut rng);
    }
}
