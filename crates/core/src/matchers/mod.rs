//! Secure and plaintext string matchers.
//!
//! * [`ciphermatch`] — CM-SW, the paper's contribution (Hom-Add only).
//! * [`yasuda`] — the arithmetic baseline \[27\] (Hamming distance, 2 Hom-Mul
//!   + 3 Hom-Add per block).
//! * [`batched`] — the SIMD-batched arithmetic baseline \[34, 29\]
//!   (rotations + squarings over slot-encoded symbols).
//! * [`boolean`] — the Boolean baseline \[17, 33\] (per-bit TFHE, XNOR+AND).
//! * [`plain`] — unencrypted references.
//!
//! [`ApproachProfile`] captures the qualitative comparison of Table 1.
//!
//! These are the *engines* — the low-level, key-borrowing implementations.
//! The unified, key-owning API over all of them (one trait, one stats
//! shape, typed errors, dynamic backend selection) lives in
//! [`crate::api`].

pub mod batched;
pub mod boolean;
pub mod ciphermatch;
pub mod plain;
pub mod yasuda;

/// Qualitative execution-time class used by Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Orders of magnitude slower than the alternative.
    High,
    /// The faster class.
    Low,
}

impl std::fmt::Display for CostClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostClass::High => write!(f, "High"),
            CostClass::Low => write!(f, "Low"),
        }
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone)]
pub struct ApproachProfile {
    /// Citation label as used in the paper.
    pub work: &'static str,
    /// Boolean or arithmetic family.
    pub family: &'static str,
    /// Execution-time class.
    pub execution_time: CostClass,
    /// Scales to growing database sizes.
    pub scalable: bool,
    /// Exploits SIMD batching.
    pub simd: bool,
    /// Supports arbitrary query sizes.
    pub flexible_query: bool,
}

/// The rows of Table 1, plus CIPHERMATCH itself for contrast.
pub fn table1_profiles() -> Vec<ApproachProfile> {
    vec![
        ApproachProfile {
            work: "Pradel et al. [33]",
            family: "Boolean",
            execution_time: CostClass::High,
            scalable: true,
            simd: false,
            flexible_query: true,
        },
        ApproachProfile {
            work: "Aziz et al. [17]",
            family: "Boolean",
            execution_time: CostClass::High,
            scalable: true,
            simd: true,
            flexible_query: true,
        },
        ApproachProfile {
            work: "Yasuda et al. [27]",
            family: "Arithmetic",
            execution_time: CostClass::Low,
            scalable: false,
            simd: false,
            flexible_query: false,
        },
        ApproachProfile {
            work: "Kim et al. [34]",
            family: "Arithmetic",
            execution_time: CostClass::High,
            scalable: true,
            simd: false,
            flexible_query: false,
        },
        ApproachProfile {
            work: "Bonte et al. [29]",
            family: "Arithmetic",
            execution_time: CostClass::High,
            scalable: true,
            simd: true,
            flexible_query: false,
        },
        ApproachProfile {
            work: "CIPHERMATCH (this work)",
            family: "Arithmetic (add-only)",
            execution_time: CostClass::Low,
            scalable: true,
            simd: true,
            flexible_query: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_claims() {
        let rows = table1_profiles();
        assert_eq!(rows.len(), 6);
        // Paper Table 1: only Yasuda [27] among prior work has low latency,
        // and it is neither scalable nor flexible.
        let yasuda = rows.iter().find(|r| r.work.contains("[27]")).unwrap();
        assert_eq!(yasuda.execution_time, CostClass::Low);
        assert!(!yasuda.scalable);
        assert!(!yasuda.flexible_query);
        // Boolean approaches are flexible but slow.
        for label in ["[33]", "[17]"] {
            let row = rows.iter().find(|r| r.work.contains(label)).unwrap();
            assert_eq!(row.execution_time, CostClass::High);
            assert!(row.flexible_query);
        }
        // CIPHERMATCH checks every box.
        let cm = rows.last().unwrap();
        assert!(cm.scalable && cm.simd && cm.flexible_query);
        assert_eq!(cm.execution_time, CostClass::Low);
    }
}
