//! Unencrypted reference matchers.
//!
//! [`BitString::find_all`] is the naive ground truth; [`bitwise_find_all`]
//! is the word-packed XNOR/AND formulation the paper cites as the
//! conventional implementation (§2.2, \[69, 70\]) — it is also the
//! "unencrypted search completes in 5.9 µs" comparison point of §3.1.

use crate::bits::BitString;

/// Packs bits into `u64` words, MSB-first per word.
fn pack_words(bits: &BitString) -> Vec<u64> {
    let words = bits.len().div_ceil(64);
    let mut out = vec![0u64; words];
    for i in 0..bits.len() {
        if bits.get(i) {
            out[i / 64] |= 1 << (63 - (i % 64));
        }
    }
    out
}

/// Reads 64 bits starting at bit offset `o` from a packed word array
/// (zero-padded past the end).
#[inline]
fn read_window(words: &[u64], o: usize) -> u64 {
    let w = o / 64;
    let s = o % 64;
    let hi = words.get(w).copied().unwrap_or(0);
    if s == 0 {
        hi
    } else {
        let lo = words.get(w + 1).copied().unwrap_or(0);
        (hi << s) | (lo >> (64 - s))
    }
}

/// Word-parallel exact matching: XNOR + mask compare, 64 bits at a time.
pub fn bitwise_find_all(db: &BitString, query: &BitString) -> Vec<usize> {
    let k = query.len();
    if k == 0 || k > db.len() {
        return Vec::new();
    }
    let dwords = pack_words(db);
    let qwords = pack_words(query);
    let full_words = k / 64;
    let tail_bits = k % 64;
    let tail_mask = if tail_bits == 0 {
        0
    } else {
        !0u64 << (64 - tail_bits)
    };
    (0..=db.len() - k)
        .filter(|&o| {
            for (w, &qw) in qwords.iter().enumerate().take(full_words) {
                if read_window(&dwords, o + w * 64) != qw {
                    return false;
                }
            }
            if tail_bits != 0 {
                let d = read_window(&dwords, o + full_words * 64) & tail_mask;
                let q = qwords[full_words] & tail_mask;
                if d != q {
                    return false;
                }
            }
            true
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_bits(len: usize, seed: u64) -> BitString {
        let mut s = seed;
        let bits: Vec<bool> = (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 62) & 1 == 1
            })
            .collect();
        BitString::from_bits(&bits)
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        let db = pseudo_random_bits(700, 42);
        for (k, at) in [(5usize, 13usize), (64, 100), (65, 333), (128, 500)] {
            let q = db.slice(at, k);
            assert_eq!(bitwise_find_all(&db, &q), db.find_all(&q), "k={k}");
        }
    }

    #[test]
    fn word_aligned_and_straddling_patterns() {
        let db = pseudo_random_bits(256, 7);
        let q = db.slice(64, 64); // exactly one word, aligned
        assert_eq!(bitwise_find_all(&db, &q), db.find_all(&q));
        let q = db.slice(60, 72); // straddles words
        assert_eq!(bitwise_find_all(&db, &q), db.find_all(&q));
    }

    #[test]
    fn degenerate_inputs() {
        let db = pseudo_random_bits(64, 3);
        assert!(bitwise_find_all(&db, &BitString::new()).is_empty());
        assert!(bitwise_find_all(&BitString::new(), &db).is_empty());
    }
}
