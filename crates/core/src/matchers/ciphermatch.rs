//! CM-SW: the CIPHERMATCH secure matcher (paper §4.2, Algorithm 1).
//!
//! Database and query are packed with [`DensePacking`], the server runs
//! **only `Hom-Add`** (one per database-polynomial × query-variant pair),
//! and index generation compares result coefficients against the all-ones
//! match value under the alignment masks.

use std::sync::Mutex;
use std::time::Instant;

use cm_bfv::{BfvContext, Ciphertext, Decryptor, Encryptor, Evaluator};
use cm_hemath::{kernels, Poly};
use rand::Rng;

use crate::api::{MatchError, MatchStats};
use crate::bits::BitString;
use crate::index_gen::{generate_indices, SumTable};
use crate::packing::DensePacking;
use crate::query::{alignment_classes, build_variants, AlignmentClass};

/// The encrypted, densely packed database stored on the server
/// (Algorithm 1 lines 1–3).
#[derive(Debug, Clone)]
pub struct EncryptedDatabase {
    pub(crate) cts: Vec<Ciphertext>,
    pub(crate) total_bits: usize,
}

impl EncryptedDatabase {
    /// Reassembles a database from raw ciphertexts — the inverse of the
    /// coefficient-stream flattening the SSD pipeline performs, so an
    /// in-flash copy can be read back as the canonical representation.
    pub fn from_ciphertexts(cts: Vec<Ciphertext>, total_bits: usize) -> Self {
        Self { cts, total_bits }
    }

    /// Number of ciphertexts.
    pub fn poly_count(&self) -> usize {
        self.cts.len()
    }

    /// Database length in bits.
    pub fn total_bits(&self) -> usize {
        self.total_bits
    }

    /// Total encrypted footprint in bytes (Fig. 2a's y-axis).
    pub fn byte_size(&self, q_bits: u32) -> usize {
        self.cts.iter().map(|ct| ct.byte_size(q_bits)).sum()
    }

    /// The database ciphertexts in storage order (used by the SSD pipeline
    /// to lay the coefficient stream out in flash).
    pub fn ciphertexts(&self) -> &[Ciphertext] {
        &self.cts
    }

    /// Serializes the database for upload/storage: a small header plus
    /// every ciphertext in the compact `cm-bfv` wire format. The output is
    /// exactly [`Self::encoded_len`] bytes.
    pub fn encode(&self, q_bits: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len(q_bits));
        out.extend_from_slice(&(self.total_bits as u64).to_le_bytes());
        out.extend_from_slice(&(self.cts.len() as u32).to_le_bytes());
        for ct in &self.cts {
            let bytes = cm_bfv::encode_ciphertext(ct, q_bits);
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        debug_assert_eq!(out.len(), self.encoded_len(q_bits));
        out
    }

    /// Exact byte length of [`Self::encode`]'s output, computed without
    /// serializing — the registry-accounting charge of hosting this
    /// database (12-byte database header, then per ciphertext a 4-byte
    /// length prefix, the 12-byte `cm-bfv` header, and the packed
    /// coefficients).
    pub fn encoded_len(&self, q_bits: u32) -> usize {
        12 + self
            .cts
            .iter()
            .map(|ct| 16 + ct.byte_size(q_bits))
            .sum::<usize>()
    }

    /// Checks that a decoded database is well-formed *for this parameter
    /// set*: every ciphertext is a fresh size-2 ciphertext over ring
    /// degree `n` with coefficients below `q`, and the declared bit count
    /// is consistent with the ciphertext count at `bits_per_poly` packing
    /// density. Run this on every untrusted upload before the ciphertexts
    /// can reach the search or index-generation paths.
    ///
    /// # Errors
    ///
    /// Returns a [`cm_bfv::DecodeError`] naming the violated invariant.
    pub fn validate(
        &self,
        n: usize,
        q: u64,
        bits_per_poly: usize,
    ) -> Result<(), cm_bfv::DecodeError> {
        use cm_bfv::DecodeError;
        if self.cts.is_empty() {
            return if self.total_bits == 0 {
                Ok(())
            } else {
                Err(DecodeError::BadHeader("bit count without ciphertexts"))
            };
        }
        let max_bits = self.cts.len().saturating_mul(bits_per_poly);
        let min_bits = (self.cts.len() - 1).saturating_mul(bits_per_poly);
        // The packer emits one (possibly empty) polynomial even for zero
        // bits, so a single ciphertext may carry any count up to the
        // packing density; beyond one, every non-final polynomial must be
        // full.
        if self.total_bits > max_bits || (self.cts.len() > 1 && self.total_bits <= min_bits) {
            return Err(DecodeError::BadHeader("bit count vs ciphertext count"));
        }
        for ct in &self.cts {
            if ct.size() != 2 {
                return Err(DecodeError::BadHeader("database ciphertext size"));
            }
            for part in ct.parts() {
                if part.len() != n {
                    return Err(DecodeError::BadHeader("database ring degree"));
                }
                if part.coeffs().iter().any(|&c| c >= q) {
                    return Err(DecodeError::CoefficientOverflow);
                }
            }
        }
        Ok(())
    }

    /// Extracts the contiguous polynomial sub-range `polys` as a
    /// standalone database — the shard primitive of the serving layer.
    ///
    /// `bits_per_poly` is the packing density
    /// ([`crate::DensePacking::bits_per_poly`]); the shard's bit count is
    /// clipped so the final shard does not claim padding bits beyond
    /// [`Self::total_bits`]. Index offsets within the shard are relative
    /// to `polys.start * bits_per_poly`.
    ///
    /// # Panics
    ///
    /// Panics if `polys` is empty, out of range, or starts beyond the
    /// database's bit length (programmer error in the shard planner).
    pub fn subrange(&self, polys: std::ops::Range<usize>, bits_per_poly: usize) -> Self {
        assert!(
            !polys.is_empty() && polys.end <= self.cts.len(),
            "shard polynomial range {polys:?} outside 0..{}",
            self.cts.len()
        );
        let start_bit = polys.start * bits_per_poly;
        assert!(
            start_bit < self.total_bits,
            "shard starts at bit {start_bit} beyond the {}-bit database",
            self.total_bits
        );
        let span = polys.len() * bits_per_poly;
        Self {
            cts: self.cts[polys].to_vec(),
            total_bits: span.min(self.total_bits - start_bit),
        }
    }

    /// Decodes a database serialized with [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`cm_bfv::DecodeError`] on malformed input.
    pub fn decode(data: &[u8]) -> Result<Self, cm_bfv::DecodeError> {
        use cm_bfv::DecodeError;
        let mut cur = Cursor { data, pos: 0 };
        let total_bits = cur.u64()? as usize;
        let count = cur.u32()? as usize;
        // Each ciphertext needs at least its 4-byte length prefix, so a
        // count the buffer cannot possibly hold is a lie told by the
        // header — reject it before trusting it for an allocation.
        if count > cur.remaining() / 4 {
            return Err(DecodeError::BadHeader("ciphertext count"));
        }
        let mut cts = Vec::with_capacity(count);
        for _ in 0..count {
            let len = cur.u32()? as usize;
            cts.push(cm_bfv::decode_ciphertext(cur.take(len)?)?);
        }
        Ok(Self { cts, total_bits })
    }
}

/// The encrypted query: all shifted/replicated variants
/// (Algorithm 1 lines 4–9).
#[derive(Debug, Clone)]
pub struct EncryptedQuery {
    pub(crate) variants: Vec<EncryptedVariant>,
    pub(crate) classes: Vec<AlignmentClass>,
    pub(crate) k: usize,
}

#[derive(Debug, Clone)]
pub(crate) struct EncryptedVariant {
    pub r: usize,
    pub phase: usize,
    pub ct: Ciphertext,
}

impl EncryptedQuery {
    /// Number of encrypted variants (`sum_r ceil((r+k)/seg_bits)`).
    pub fn variant_count(&self) -> usize {
        self.variants.len()
    }

    /// Query length in bits.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total encrypted footprint in bytes.
    pub fn byte_size(&self, q_bits: u32) -> usize {
        self.variants.iter().map(|v| v.ct.byte_size(q_bits)).sum()
    }

    /// Iterates over the variants as `(r, phase, ciphertext)` (used by the
    /// SSD pipeline, which runs each variant through the in-flash adder).
    pub fn variant_cts(&self) -> impl Iterator<Item = (usize, usize, &Ciphertext)> + '_ {
        self.variants.iter().map(|v| (v.r, v.phase, &v.ct))
    }

    /// The alignment classes of this query (needed to rebuild a
    /// [`SearchResult`] from externally computed sums).
    pub fn classes(&self) -> &[AlignmentClass] {
        &self.classes
    }

    /// Serializes the query for the wire: a header, the alignment classes,
    /// and every variant ciphertext in the compact `cm-bfv` format. This
    /// is what a remote key owner ships to a `cm_server` tenant.
    pub fn encode(&self, q_bits: u32) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&QUERY_MAGIC.to_be_bytes());
        out.extend_from_slice(&(self.k as u64).to_le_bytes());
        out.extend_from_slice(&(self.classes.len() as u16).to_le_bytes());
        for class in &self.classes {
            out.extend_from_slice(&(class.r as u16).to_le_bytes());
            out.extend_from_slice(&(class.window_segs as u16).to_le_bytes());
            for (&neg, &mask) in class.neg_segments.iter().zip(&class.masks) {
                out.extend_from_slice(&neg.to_le_bytes());
                out.extend_from_slice(&mask.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.variants.len() as u32).to_le_bytes());
        for v in &self.variants {
            out.extend_from_slice(&(v.r as u16).to_le_bytes());
            out.extend_from_slice(&(v.phase as u16).to_le_bytes());
            let ct = cm_bfv::encode_ciphertext(&v.ct, q_bits);
            out.extend_from_slice(&(ct.len() as u32).to_le_bytes());
            out.extend_from_slice(&ct);
        }
        out
    }

    /// Decodes a query serialized with [`Self::encode`].
    ///
    /// Decoding alone does not prove the query fits a particular parameter
    /// set — run [`Self::validate`] against the server's context before
    /// searching with untrusted bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`cm_bfv::DecodeError`] on malformed input; never panics.
    pub fn decode(data: &[u8]) -> Result<Self, cm_bfv::DecodeError> {
        use cm_bfv::DecodeError;
        let mut cur = Cursor { data, pos: 0 };
        if cur.u32_be()? != QUERY_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let k = cur.u64()? as usize;
        let class_count = cur.u16()? as usize;
        // Classes are indexed by bit offset within a segment, so there can
        // never be more than 64 of them (a segment fits in a u64 word).
        if class_count == 0 || class_count > 64 {
            return Err(DecodeError::BadHeader("alignment class count"));
        }
        let mut classes = Vec::with_capacity(class_count);
        for _ in 0..class_count {
            let r = cur.u16()? as usize;
            let window_segs = cur.u16()? as usize;
            // Each window segment costs 16 encoded bytes; a count the
            // remaining buffer cannot hold is a lie told by the header.
            if window_segs == 0 || window_segs > cur.remaining() / 16 {
                return Err(DecodeError::BadHeader("window segment count"));
            }
            let mut neg_segments = Vec::with_capacity(window_segs);
            let mut masks = Vec::with_capacity(window_segs);
            for _ in 0..window_segs {
                neg_segments.push(cur.u64()?);
                masks.push(cur.u64()?);
            }
            classes.push(AlignmentClass {
                r,
                window_segs,
                neg_segments,
                masks,
            });
        }
        let variant_count = cur.u32()? as usize;
        // Each variant costs at least its 8-byte preamble.
        if variant_count > cur.remaining() / 8 {
            return Err(DecodeError::BadHeader("variant count"));
        }
        let mut variants = Vec::with_capacity(variant_count);
        for _ in 0..variant_count {
            let r = cur.u16()? as usize;
            let phase = cur.u16()? as usize;
            let len = cur.u32()? as usize;
            let ct = cm_bfv::decode_ciphertext(cur.take(len)?)?;
            variants.push(EncryptedVariant { r, phase, ct });
        }
        Ok(Self {
            variants,
            classes,
            k,
        })
    }

    /// Decodes and validates in one step — the form every serving-side
    /// wire path should use ([`Self::decode`] + [`Self::validate`]).
    ///
    /// # Errors
    ///
    /// Returns a [`cm_bfv::DecodeError`] on malformed bytes or a query
    /// that does not fit the given parameter set.
    pub fn decode_validated(
        data: &[u8],
        n: usize,
        seg_bits: usize,
        q: u64,
    ) -> Result<Self, cm_bfv::DecodeError> {
        let query = Self::decode(data)?;
        query.validate(n, seg_bits, q)?;
        Ok(query)
    }

    /// Checks that a decoded query is well-formed *for this parameter set*:
    /// the alignment classes cover every bit offset of a `seg_bits`-wide
    /// segment consistently with `k`, every `(r, phase)` variant the index
    /// generator will look up is present, and every variant ciphertext is a
    /// fresh size-2 ciphertext over ring degree `n` with coefficients below
    /// `q`. Rejecting anything else keeps a hostile wire query from
    /// panicking the search or index-generation paths.
    ///
    /// # Errors
    ///
    /// Returns a [`cm_bfv::DecodeError`] naming the violated invariant.
    pub fn validate(&self, n: usize, seg_bits: usize, q: u64) -> Result<(), cm_bfv::DecodeError> {
        use cm_bfv::DecodeError;
        if self.k == 0 {
            return Err(DecodeError::BadHeader("empty query"));
        }
        if self.classes.len() != seg_bits {
            return Err(DecodeError::BadHeader("alignment class count"));
        }
        let full = (1u64 << seg_bits) - 1;
        for (r, class) in self.classes.iter().enumerate() {
            if class.r != r || class.window_segs != (r + self.k).div_ceil(seg_bits) {
                return Err(DecodeError::BadHeader("alignment class geometry"));
            }
            if class.neg_segments.len() != class.window_segs
                || class.masks.len() != class.window_segs
            {
                return Err(DecodeError::BadHeader("alignment class lengths"));
            }
            for (&neg, &mask) in class.neg_segments.iter().zip(&class.masks) {
                if neg > full || mask > full || neg & mask != 0 {
                    return Err(DecodeError::BadHeader("alignment class segments"));
                }
            }
        }
        let expected: usize = self.classes.iter().map(|c| c.window_segs).sum();
        if self.variants.len() != expected {
            return Err(DecodeError::BadHeader("variant count"));
        }
        let mut seen = std::collections::HashSet::new();
        for v in &self.variants {
            let s = self
                .classes
                .get(v.r)
                .map(|c| c.window_segs)
                .ok_or(DecodeError::BadHeader("variant class"))?;
            if v.phase >= s || !seen.insert((v.r, v.phase)) {
                return Err(DecodeError::BadHeader("variant phase"));
            }
            if v.ct.size() != 2 {
                return Err(DecodeError::BadHeader("variant ciphertext size"));
            }
            for part in v.ct.parts() {
                if part.len() != n {
                    return Err(DecodeError::BadHeader("variant ring degree"));
                }
                if part.coeffs().iter().any(|&c| c >= q) {
                    return Err(DecodeError::CoefficientOverflow);
                }
            }
        }
        Ok(())
    }
}

/// Magic bytes identifying the serialized-query format ("CMQ1").
const QUERY_MAGIC: u32 = 0x434D_5131;

/// Minimal bounds-checked reader over a byte slice (decode helper).
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], cm_bfv::DecodeError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.data.len())
            .ok_or(cm_bfv::DecodeError::Truncated)?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, cm_bfv::DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, cm_bfv::DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u32_be(&mut self) -> Result<u32, cm_bfv::DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, cm_bfv::DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// One query variant's Hom-Add sweep output, stored as a single flat
/// coefficient arena instead of `poly_count` heap-allocated ciphertexts.
///
/// Layout is polynomial-major: result ciphertext `j` occupies
/// `arena[j * ct_size * n .. (j + 1) * ct_size * n]`, with component
/// `p` at offset `p * n` inside that window. The flat layout is what
/// lets the search sweep write every Hom-Add straight into one
/// allocation and split the arena into disjoint chunks for the
/// (variant × polynomial-chunk) parallel sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantSums {
    /// The variant's `(r, phase)` alignment key.
    pub(crate) key: (usize, usize),
    /// `ct_count * ct_size * n` reduced coefficients.
    pub(crate) arena: Vec<u64>,
    /// Components per result ciphertext (2 for fresh CM-SW results).
    pub(crate) ct_size: usize,
    /// Ring degree.
    pub(crate) n: usize,
}

impl VariantSums {
    /// Flattens per-polynomial result ciphertexts into an arena,
    /// zero-padding any ciphertext smaller than the widest one.
    fn from_cts(key: (usize, usize), cts: &[Ciphertext]) -> Self {
        let ct_size = cts.iter().map(Ciphertext::size).max().unwrap_or(0);
        let n = cts.first().map_or(0, |ct| ct.part(0).len());
        let stride = ct_size * n;
        let mut arena = vec![0u64; cts.len() * stride];
        for (ct, slot) in cts.iter().zip(arena.chunks_exact_mut(stride.max(1))) {
            for (part, window) in ct.parts().iter().zip(slot.chunks_exact_mut(n.max(1))) {
                window.copy_from_slice(part.coeffs());
            }
        }
        Self {
            key,
            arena,
            ct_size,
            n,
        }
    }

    /// The variant's `(r, phase)` alignment key.
    pub fn key(&self) -> (usize, usize) {
        self.key
    }

    /// Number of result ciphertexts held in the arena.
    pub fn ciphertext_count(&self) -> usize {
        self.arena
            .len()
            .checked_div(self.ct_size * self.n)
            .unwrap_or(0)
    }
}

/// The server's raw search output: one result ciphertext per
/// (variant, database polynomial) pair (Algorithm 1 lines 10–11),
/// held as one flat coefficient arena per variant ([`VariantSums`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    pub(crate) per_variant: Vec<VariantSums>,
    pub(crate) total_bits: usize,
    pub(crate) k: usize,
    pub(crate) classes: Vec<AlignmentClass>,
}

impl SearchResult {
    /// Number of result ciphertexts.
    pub fn ciphertext_count(&self) -> usize {
        self.per_variant
            .iter()
            .map(VariantSums::ciphertext_count)
            .sum()
    }

    /// Assembles a search result from externally computed Hom-Add outputs
    /// (e.g. the in-flash pipeline): `per_variant` maps `(r, phase)` to the
    /// per-polynomial result ciphertexts.
    pub fn from_raw(
        per_variant: Vec<((usize, usize), Vec<Ciphertext>)>,
        total_bits: usize,
        k: usize,
        classes: Vec<AlignmentClass>,
    ) -> Self {
        Self {
            per_variant: per_variant
                .into_iter()
                .map(|(key, cts)| VariantSums::from_cts(key, &cts))
                .collect(),
            total_bits,
            k,
            classes,
        }
    }
}

/// The CM-SW engine: packing + addition-only matching.
#[derive(Debug, Clone)]
pub struct CiphermatchEngine {
    ctx: BfvContext,
    packing: DensePacking,
    evaluator: Evaluator,
    stats: MatchStats,
}

impl CiphermatchEngine {
    /// Creates an engine for a dense-packing-capable context
    /// (power-of-two `t`; use [`cm_bfv::BfvParams::ciphermatch_1024`]).
    pub fn new(ctx: &BfvContext) -> Self {
        Self {
            ctx: ctx.clone(),
            packing: DensePacking::new(ctx),
            evaluator: Evaluator::new(ctx),
            stats: MatchStats::default(),
        }
    }

    /// The packing scheme.
    pub fn packing(&self) -> &DensePacking {
        &self.packing
    }

    /// Statistics accumulated so far. Only `hom_adds` and `add_time` are
    /// ever non-zero: CM-SW's server runs no other homomorphic operation,
    /// which is the paper's core claim.
    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
    }

    /// Packs and encrypts a database (client side, done once).
    pub fn encrypt_database<R: Rng + ?Sized>(
        &self,
        enc: &Encryptor<'_>,
        data: &BitString,
        rng: &mut R,
    ) -> EncryptedDatabase {
        let cts = self
            .packing
            .pack(data)
            .iter()
            .map(|pt| enc.encrypt(pt, rng))
            .collect();
        EncryptedDatabase {
            cts,
            total_bits: data.len(),
        }
    }

    /// Prepares and encrypts all query variants (client side, per query).
    pub fn prepare_query<R: Rng + ?Sized>(
        &self,
        enc: &Encryptor<'_>,
        query: &BitString,
        rng: &mut R,
    ) -> EncryptedQuery {
        let classes = alignment_classes(query, self.packing.seg_bits());
        let variants = build_variants(&classes, self.ctx.params().n)
            .into_iter()
            .map(|v| EncryptedVariant {
                r: v.r,
                phase: v.phase,
                ct: enc.encrypt(&v.plaintext, rng),
            })
            .collect();
        EncryptedQuery {
            variants,
            classes,
            k: query.len(),
        }
    }

    /// Server-side secure search: one `Hom-Add` per (variant, polynomial).
    /// No multiplications, no rotations — the paper's core claim.
    ///
    /// The whole sweep for a variant writes into one flat coefficient
    /// arena ([`VariantSums`]) via [`Evaluator::add_into`]: zero heap
    /// allocations per Hom-Add, and the vectorized slice kernels run over
    /// long contiguous spans.
    pub fn search(&mut self, db: &EncryptedDatabase, query: &EncryptedQuery) -> SearchResult {
        let mut out = SearchResult {
            per_variant: Vec::new(),
            total_bits: 0,
            k: 0,
            classes: Vec::new(),
        };
        self.search_into(db, query, &mut out);
        out
    }

    /// [`Self::search`] into a caller-owned result: when `out` comes from
    /// a previous search of the same shape, its arenas are rewritten in
    /// place and the sweep performs **zero** heap allocations — the
    /// steady-state serving mode, where a per-query multi-megabyte
    /// allocate/zero/fault/free cycle would otherwise rival the Hom-Add
    /// work itself.
    pub fn search_into(
        &mut self,
        db: &EncryptedDatabase,
        query: &EncryptedQuery,
        out: &mut SearchResult,
    ) {
        let n = self.ctx.params().n;
        let db_size = db.cts.iter().map(Ciphertext::size).max().unwrap_or(0);
        out.per_variant
            .resize_with(query.variants.len(), || VariantSums {
                key: (0, 0),
                arena: Vec::new(),
                ct_size: 0,
                n: 0,
            });
        for (v, sums) in query.variants.iter().zip(&mut out.per_variant) {
            let ct_size = db_size.max(v.ct.size());
            let stride = ct_size * n;
            let t0 = Instant::now();
            sums.key = (v.r, v.phase);
            sums.ct_size = ct_size;
            sums.n = n;
            sums.arena.resize(db.cts.len() * stride, 0);
            for (dbct, slot) in db
                .cts
                .iter()
                .zip(sums.arena.chunks_exact_mut(stride.max(1)))
            {
                let pair = dbct.size().max(v.ct.size()) * n;
                self.evaluator.add_into(dbct, &v.ct, &mut slot[..pair]);
                // Padding components past the pair width must read as
                // zero even when the arena is being reused.
                slot[pair..].fill(0);
            }
            self.stats.add_time += t0.elapsed();
            self.stats.hom_adds += db.cts.len() as u64;
        }
        out.total_bits = db.total_bits;
        out.k = query.k;
        out.classes.clone_from(&query.classes);
    }

    /// Parallel variant of [`Self::search`]: the `Hom-Add` sweep is
    /// embarrassingly parallel (one independent addition per
    /// (variant, polynomial) pair), which is how CM-SW exploits the SIMD /
    /// multicore resources the paper's Table 1 credits it with.
    ///
    /// Work is split over (variant × polynomial-chunk) tasks — each task
    /// owns a disjoint window of a variant's result arena — so a single
    /// wide variant sweep still spreads across every worker instead of
    /// serializing on the variant axis. Worker panics surface as
    /// [`MatchError::WorkerPanicked`] instead of tearing down the caller.
    pub fn search_parallel(
        &mut self,
        db: &EncryptedDatabase,
        query: &EncryptedQuery,
        threads: usize,
    ) -> Result<SearchResult, MatchError> {
        if threads == 0 {
            return Err(MatchError::InvalidConfig(
                "at least one search thread required",
            ));
        }
        if db.cts.is_empty() || query.variants.is_empty() {
            // Nothing to sweep; produce the empty arenas directly.
            return Ok(self.search(db, query));
        }
        let n = self.ctx.params().n;
        let db_size = db.cts.iter().map(Ciphertext::size).max().unwrap_or(0);

        // Pre-size one arena per variant, then slice each arena into
        // contiguous polynomial chunks. Aim for ~4 tasks per worker so
        // uneven chunk costs still balance.
        let strides: Vec<usize> = query
            .variants
            .iter()
            .map(|v| db_size.max(v.ct.size()) * n)
            .collect();
        let mut arenas: Vec<Vec<u64>> = strides
            .iter()
            .map(|stride| vec![0u64; db.cts.len() * stride])
            .collect();
        let tasks_per_variant = (threads * 4)
            .div_ceil(query.variants.len())
            .clamp(1, db.cts.len());
        let chunk_polys = db.cts.len().div_ceil(tasks_per_variant);

        struct SweepTask<'a> {
            variant: &'a EncryptedVariant,
            stride: usize,
            db_start: usize,
            out: Mutex<&'a mut [u64]>,
        }

        let mut tasks = Vec::with_capacity(query.variants.len() * tasks_per_variant);
        for ((v, arena), &stride) in query.variants.iter().zip(&mut arenas).zip(&strides) {
            for (c, window) in arena.chunks_mut(chunk_polys * stride).enumerate() {
                tasks.push(SweepTask {
                    variant: v,
                    stride,
                    db_start: c * chunk_polys,
                    out: Mutex::new(window),
                });
            }
        }

        let evaluator = &self.evaluator;
        let t0 = Instant::now();
        crate::exec::fan_out(&tasks, threads, |chunk| {
            for task in chunk {
                let mut out = task
                    .out
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let dbcts = &db.cts[task.db_start..];
                for (dbct, slot) in dbcts.iter().zip(out.chunks_exact_mut(task.stride)) {
                    let pair = dbct.size().max(task.variant.ct.size()) * n;
                    evaluator.add_into(dbct, &task.variant.ct, &mut slot[..pair]);
                }
            }
        })?;
        drop(tasks);
        self.stats.add_time += t0.elapsed();
        self.stats.hom_adds += (query.variants.len() * db.cts.len()) as u64;

        let per_variant = query
            .variants
            .iter()
            .zip(arenas)
            .zip(strides)
            .map(|((v, arena), stride)| VariantSums {
                key: (v.r, v.phase),
                arena,
                ct_size: stride / n,
                n,
            })
            .collect();
        Ok(SearchResult {
            per_variant,
            total_bits: db.total_bits,
            k: query.k,
            classes: query.classes.clone(),
        })
    }

    /// The scalar-reference search sweep: the pre-vectorization baseline
    /// kept alive so the `hot_path` benchmark can measure both paths in
    /// the same run. One fresh heap allocation per (variant, polynomial,
    /// component) and one branchy [`cm_hemath::Modulus`] reduction per
    /// coefficient — deliberately boring; do not optimize.
    pub fn search_reference(
        &mut self,
        db: &EncryptedDatabase,
        query: &EncryptedQuery,
    ) -> SearchResult {
        let n = self.ctx.params().n;
        let modulus = *self.ctx.rq().modulus();
        let mut per_variant = Vec::with_capacity(query.variants.len());
        for v in &query.variants {
            let t0 = Instant::now();
            let results: Vec<Ciphertext> = db
                .cts
                .iter()
                .map(|dbct| {
                    let size = dbct.size().max(v.ct.size());
                    let zero = vec![0u64; n];
                    let parts: Vec<Poly> = (0..size)
                        .map(|p| {
                            let a = dbct.parts().get(p).map_or(&zero[..], |x| x.coeffs());
                            let b = v.ct.parts().get(p).map_or(&zero[..], |x| x.coeffs());
                            let mut out = vec![0u64; n];
                            kernels::scalar_ref::add_slices(&modulus, a, b, &mut out);
                            Poly::from_coeffs(out)
                        })
                        .collect();
                    Ciphertext::from_parts(parts)
                })
                .collect();
            self.stats.add_time += t0.elapsed();
            self.stats.hom_adds += db.cts.len() as u64;
            per_variant.push(VariantSums::from_cts((v.r, v.phase), &results));
        }
        SearchResult {
            per_variant,
            total_bits: db.total_bits,
            k: query.k,
            classes: query.classes.clone(),
        }
    }

    /// Index generation with a decryption capability (the paper's
    /// trusted-controller model, or the client after receiving results):
    /// decrypt sums, compare against the match polynomial under masks, and
    /// emit matching bit offsets. Decrypts straight out of the flat arenas
    /// via [`Decryptor::decrypt_slices`] — no ciphertext reassembly.
    pub fn generate_indices(&self, dec: &Decryptor<'_>, result: &SearchResult) -> Vec<usize> {
        let mut table = SumTable::new();
        for v in &result.per_variant {
            let stride = v.ct_size * v.n;
            if stride == 0 {
                table.insert(v.key.0, v.key.1, Vec::new());
                continue;
            }
            let sums: Vec<Vec<u64>> = v
                .arena
                .chunks_exact(stride)
                .map(|ct| {
                    let parts: Vec<&[u64]> = ct.chunks_exact(v.n).collect();
                    dec.decrypt_slices(&parts).coeffs().to_vec()
                })
                .collect();
            table.insert(v.key.0, v.key.1, sums);
        }
        generate_indices(
            &result.classes,
            &table,
            self.ctx.params().n,
            self.packing.seg_bits(),
            result.total_bits,
            result.k,
        )
    }

    /// Convenience end-to-end search (encrypt query → search → index gen).
    pub fn find_all<R: Rng + ?Sized>(
        &mut self,
        enc: &Encryptor<'_>,
        dec: &Decryptor<'_>,
        db: &EncryptedDatabase,
        query: &BitString,
        rng: &mut R,
    ) -> Vec<usize> {
        let q = self.prepare_query(enc, query, rng);
        let result = self.search(db, &q);
        self.generate_indices(dec, &result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_bfv::{BfvParams, KeyGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        ctx: BfvContext,
    }

    impl Fixture {
        fn new() -> Self {
            Self {
                ctx: BfvContext::new(BfvParams::insecure_test_add()),
            }
        }
    }

    fn run_search(db_bits: &BitString, query_bits: &BitString) -> (Vec<usize>, MatchStats) {
        let f = Fixture::new();
        let mut rng = StdRng::seed_from_u64(777);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&f.ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&f.ctx, pk);
        let dec = Decryptor::new(&f.ctx, sk);
        let mut engine = CiphermatchEngine::new(&f.ctx);
        let db = engine.encrypt_database(&enc, db_bits, &mut rng);
        let got = engine.find_all(&enc, &dec, &db, query_bits, &mut rng);
        (got, engine.stats())
    }

    #[test]
    fn finds_aligned_and_unaligned_matches() {
        let db = BitString::from_ascii("encrypted search over packed data");
        for (start, len) in [(0usize, 16usize), (9 * 8, 24), (3, 13), (21, 40)] {
            let q = db.slice(start, len);
            let (got, _) = run_search(&db, &q);
            assert_eq!(got, db.find_all(&q), "slice ({start}, {len})");
        }
    }

    #[test]
    fn reports_absence_without_false_positives() {
        let db = BitString::from_ascii("aaaaaaaaaaaaaaaa");
        let q = BitString::from_ascii("ab");
        let (got, _) = run_search(&db, &q);
        assert!(got.is_empty());
    }

    #[test]
    fn uses_only_additions() {
        let db = BitString::from_ascii("some database content here");
        let q = BitString::from_ascii("base");
        let (_, stats) = run_search(&db, &q);
        assert!(stats.hom_adds > 0);
        // The engine exposes no multiply path at all; the stat proves the
        // server loop ran adds exactly once per (variant, polynomial).
    }

    #[test]
    fn parallel_search_equals_serial() {
        let f = Fixture::new();
        let mut rng = StdRng::seed_from_u64(888);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&f.ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&f.ctx, pk);
        let dec = Decryptor::new(&f.ctx, sk);
        let mut engine = CiphermatchEngine::new(&f.ctx);
        let data = BitString::from_ascii("parallel additions across worker threads");
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        let pattern = BitString::from_ascii("worker");
        let query = engine.prepare_query(&enc, &pattern, &mut rng);
        let serial = engine.search(&db, &query);
        for threads in [1usize, 2, 4, 7] {
            let mut parallel = engine
                .search_parallel(&db, &query, threads)
                .expect("parallel search");
            // Thread interleaving may permute variant order; normalize.
            parallel.per_variant.sort_by_key(|v| v.key);
            let mut expect = serial.clone();
            expect.per_variant.sort_by_key(|v| v.key);
            assert_eq!(parallel, expect, "threads = {threads}");
            assert_eq!(
                engine.generate_indices(&dec, &parallel),
                data.find_all(&pattern)
            );
        }
        assert!(matches!(
            engine.search_parallel(&db, &query, 0),
            Err(MatchError::InvalidConfig(_))
        ));
    }

    #[test]
    fn reference_sweep_equals_vectorized_sweep() {
        let f = Fixture::new();
        let mut rng = StdRng::seed_from_u64(777);
        let pk = {
            let kg = KeyGenerator::new(&f.ctx, &mut rng);
            kg.public_key(&mut rng)
        };
        let enc = Encryptor::new(&f.ctx, pk);
        let mut engine = CiphermatchEngine::new(&f.ctx);
        let data = BitString::from_ascii("scalar baseline must agree with the fast path");
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        let query = engine.prepare_query(&enc, &BitString::from_ascii("fast"), &mut rng);
        let fast = engine.search(&db, &query);
        let slow = engine.search_reference(&db, &query);
        assert_eq!(fast, slow);
    }

    #[test]
    fn search_into_reuses_buffers_correctly() {
        let f = Fixture::new();
        let mut rng = StdRng::seed_from_u64(555);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&f.ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&f.ctx, pk);
        let dec = Decryptor::new(&f.ctx, sk);
        let mut engine = CiphermatchEngine::new(&f.ctx);
        let data = BitString::from_ascii("reused arenas must not leak stale coefficients");
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        let q1 = engine.prepare_query(&enc, &BitString::from_ascii("stale"), &mut rng);
        let q2 = engine.prepare_query(&enc, &BitString::from_ascii("arenas"), &mut rng);
        // Fill the buffer with q1's result, then rewrite it with q2's:
        // the reused buffer must be indistinguishable from a fresh one.
        let mut reused = engine.search(&db, &q1);
        engine.search_into(&db, &q2, &mut reused);
        assert_eq!(reused, engine.search(&db, &q2));
        assert_eq!(
            engine.generate_indices(&dec, &reused),
            data.find_all(&BitString::from_ascii("arenas"))
        );
    }

    #[test]
    fn multi_polynomial_database() {
        // n = 256 coefficients x 8 bits = 2048 bits per polynomial; use a
        // database bigger than that so windows cross ciphertext borders.
        let bytes: Vec<u8> = (0..400u32).map(|i| (i * 31 % 253) as u8).collect();
        let db = BitString::from_bytes(&bytes);
        let q = db.slice(2040, 24); // straddles the polynomial boundary
        let (got, _) = run_search(&db, &q);
        assert_eq!(got, db.find_all(&q));
    }

    #[test]
    fn database_serialization_roundtrips_and_searches() {
        let f = Fixture::new();
        let mut rng = StdRng::seed_from_u64(999);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&f.ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&f.ctx, pk);
        let dec = Decryptor::new(&f.ctx, sk);
        let mut engine = CiphermatchEngine::new(&f.ctx);
        let data = BitString::from_ascii("persist the encrypted database to disk and back");
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        let q_bits = 64 - f.ctx.params().q.leading_zeros();
        let bytes = db.encode(q_bits);
        let restored = EncryptedDatabase::decode(&bytes).expect("roundtrip");
        assert_eq!(restored.total_bits(), db.total_bits());
        assert_eq!(restored.ciphertexts(), db.ciphertexts());
        // And the restored database searches identically.
        let pattern = BitString::from_ascii("disk");
        let got = engine.find_all(&enc, &dec, &restored, &pattern, &mut rng);
        assert_eq!(got, data.find_all(&pattern));
        // Malformed input errors instead of panicking.
        assert!(EncryptedDatabase::decode(&bytes[..bytes.len() - 3]).is_err());
        assert!(EncryptedDatabase::decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn query_serialization_roundtrips_and_validates() {
        let f = Fixture::new();
        let mut rng = StdRng::seed_from_u64(4242);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&f.ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&f.ctx, pk);
        let dec = Decryptor::new(&f.ctx, sk);
        let mut engine = CiphermatchEngine::new(&f.ctx);
        let data = BitString::from_ascii("queries cross the wire as bytes");
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        let pattern = BitString::from_ascii("wire");
        let query = engine.prepare_query(&enc, &pattern, &mut rng);
        let q_bits = 64 - f.ctx.params().q.leading_zeros();
        let n = f.ctx.params().n;
        let seg_bits = engine.packing().seg_bits();

        let bytes = query.encode(q_bits);
        let restored = EncryptedQuery::decode(&bytes).expect("roundtrip");
        restored
            .validate(n, seg_bits, f.ctx.params().q)
            .expect("well-formed");
        assert_eq!(restored.k(), query.k());
        assert_eq!(restored.classes(), query.classes());
        assert_eq!(restored.variant_count(), query.variant_count());

        // The restored query searches identically.
        let result = engine.search(&db, &restored);
        assert_eq!(
            engine.generate_indices(&dec, &result),
            data.find_all(&pattern)
        );

        // Every truncation fails cleanly; garbage never panics.
        for cut in 0..bytes.len() {
            assert!(
                EncryptedQuery::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        for i in (0..bytes.len()).step_by(11) {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x5A;
            if let Ok(q) = EncryptedQuery::decode(&flipped) {
                // A decodable flip must still be caught by validation or
                // search safely (validation bounds everything index
                // generation touches).
                let _ = q.validate(n, seg_bits, f.ctx.params().q);
            }
        }

        // Validation pins the geometry: a query for the wrong ring degree
        // or segment width is rejected before it can reach the engine.
        assert!(restored
            .validate(n * 2, seg_bits, f.ctx.params().q)
            .is_err());
        assert!(restored
            .validate(n, seg_bits + 1, f.ctx.params().q)
            .is_err());
        assert!(restored.validate(n, seg_bits, 2).is_err());
    }

    #[test]
    fn subrange_extracts_searchable_shards() {
        // A database spanning several polynomials, split at polynomial
        // granularity: each shard must be independently searchable and the
        // final shard must not claim padding bits.
        let f = Fixture::new();
        let mut rng = StdRng::seed_from_u64(5353);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&f.ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&f.ctx, pk);
        let dec = Decryptor::new(&f.ctx, sk);
        let mut engine = CiphermatchEngine::new(&f.ctx);
        let bpp = engine.packing().bits_per_poly();
        let bytes: Vec<u8> = (0..(bpp / 8) * 2 + 100)
            .map(|i| (i * 37 % 251) as u8)
            .collect();
        let data = BitString::from_bytes(&bytes);
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        assert!(db.poly_count() >= 3);

        let shard = db.subrange(1..2, bpp);
        assert_eq!(shard.poly_count(), 1);
        assert_eq!(shard.total_bits(), bpp);
        let last = db.subrange(db.poly_count() - 1..db.poly_count(), bpp);
        assert_eq!(
            last.total_bits(),
            data.len() - (db.poly_count() - 1) * bpp,
            "final shard is clipped to the real bit length"
        );

        // Searching the shard finds exactly the shard-local occurrences.
        let pattern = data.slice(bpp + 40, 24);
        let query = engine.prepare_query(&enc, &pattern, &mut rng);
        let result = engine.search(&shard, &query);
        let local = engine.generate_indices(&dec, &result);
        let shard_bits = data.slice(bpp, bpp);
        assert_eq!(local, shard_bits.find_all(&pattern));
        assert!(local.contains(&40));
    }

    #[test]
    fn encoded_len_matches_encode_and_validate_pins_geometry() {
        let f = Fixture::new();
        let mut rng = StdRng::seed_from_u64(6464);
        let (_, pk) = {
            let kg = KeyGenerator::new(&f.ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&f.ctx, pk);
        let engine = CiphermatchEngine::new(&f.ctx);
        let q_bits = 64 - f.ctx.params().q.leading_zeros();
        let n = f.ctx.params().n;
        let q = f.ctx.params().q;
        let bpp = engine.packing().bits_per_poly();

        // Single- and multi-polynomial databases: encoded_len is exact.
        for len in [40usize, bpp, bpp + 1, bpp * 2 + 100] {
            let data = BitString::from_bits(&vec![true; len]);
            let db = engine.encrypt_database(&enc, &data, &mut rng);
            assert_eq!(
                db.encode(q_bits).len(),
                db.encoded_len(q_bits),
                "{len} bits"
            );
            let restored = EncryptedDatabase::decode(&db.encode(q_bits)).unwrap();
            restored.validate(n, q, bpp).expect("well-formed");
            // The wrong geometry is rejected before the engine sees it.
            assert!(restored.validate(n * 2, q, bpp).is_err());
            assert!(restored.validate(n, 2, bpp).is_err());
            if restored.poly_count() > 1 {
                // Only a multi-polynomial database pins the packing
                // density (one polynomial holds any count up to bpp).
                assert!(restored.validate(n, q, bpp * 2).is_err());
            }
        }

        // A lying bit count (more bits than the ciphertexts can hold, or
        // few enough that the last polynomial would be empty) fails.
        let data = BitString::from_bits(&vec![false; bpp + 9]);
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        let mut lying = db.clone();
        lying.total_bits = bpp * 3;
        assert!(lying.validate(n, q, bpp).is_err());
        lying.total_bits = bpp;
        assert!(lying.validate(n, q, bpp).is_err());

        // The empty database is representable (the packer pads to one
        // polynomial).
        let empty = engine.encrypt_database(&enc, &BitString::new(), &mut rng);
        assert!(empty.poly_count() <= 1);
        empty.validate(n, q, bpp).expect("empty database");
        assert_eq!(empty.encode(q_bits).len(), empty.encoded_len(q_bits));
    }

    /// Fuzz-ish regression for the decode path: every truncation of a
    /// valid encoding, headers shorter than 12 bytes, absurd ciphertext
    /// counts, lying length prefixes, and byte-flipped garbage must all
    /// return `Err`, never panic (and never allocate by a lying header).
    #[test]
    fn decode_rejects_truncated_and_garbage_buffers() {
        let f = Fixture::new();
        let mut rng = StdRng::seed_from_u64(1234);
        let (_, pk) = {
            let kg = KeyGenerator::new(&f.ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&f.ctx, pk);
        let engine = CiphermatchEngine::new(&f.ctx);
        let data = BitString::from_ascii("decode must never panic");
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        let q_bits = 64 - f.ctx.params().q.leading_zeros();
        let good = db.encode(q_bits);

        // Every proper prefix (includes the sub-header cases) fails cleanly.
        for cut in 0..good.len() {
            assert!(
                EncryptedDatabase::decode(&good[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }

        // A header claiming u32::MAX ciphertexts in a 12-byte buffer must
        // not be trusted for an allocation.
        let mut lying_count = good[..12].to_vec();
        lying_count[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(EncryptedDatabase::decode(&lying_count).is_err());

        // A ciphertext length prefix pointing far past the end.
        let mut lying_len = good.clone();
        lying_len[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(EncryptedDatabase::decode(&lying_len).is_err());

        // Deterministic byte flips across the whole buffer: decoding
        // either fails cleanly or (for flips in ciphertext payload bytes
        // below the coefficient limit) succeeds — it must never panic.
        for i in (0..good.len()).step_by(7) {
            let mut flipped = good.clone();
            flipped[i] ^= 0xA5;
            let _ = EncryptedDatabase::decode(&flipped);
        }

        // Pure garbage of various lengths.
        for len in [0usize, 1, 11, 12, 13, 64, 257] {
            let garbage: Vec<u8> = (0..len).map(|i| (i * 131 + 17) as u8).collect();
            let _ = EncryptedDatabase::decode(&garbage);
        }
    }

    #[test]
    fn encrypted_footprint_is_4x_plain_with_paper_params() {
        // The 4x bound (paper §4.2.1) holds for the paper's parameters:
        // 16 packed bits become one 32-bit coefficient (2x) in each of the
        // two ciphertext polynomials (2x).
        let ctx = BfvContext::new(BfvParams::ciphermatch_1024());
        let mut rng = StdRng::seed_from_u64(1);
        let (_, pk) = {
            let kg = KeyGenerator::new(&ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&ctx, pk);
        let engine = CiphermatchEngine::new(&ctx);
        // Exactly one full polynomial of data.
        let bits_per_poly = engine.packing().bits_per_poly();
        let db_bits = BitString::from_bits(&vec![true; bits_per_poly]);
        let db = engine.encrypt_database(&enc, &db_bits, &mut rng);
        let q_bits = 64 - ctx.params().q.leading_zeros();
        let plain_bytes = bits_per_poly / 8;
        assert_eq!(db.byte_size(q_bits), 4 * plain_bytes);
    }
}
