//! Flat binary strings.
//!
//! The paper flattens the database into a binary vector before packing
//! (Algorithm 1, line 1). [`BitString`] is that vector, with constructors
//! for raw bytes, ASCII text and DNA sequences (2 bits per base, the
//! encoding used by the DNA case study).

/// A flat, indexable string of bits (bit 0 first).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitString {
    bits: Vec<bool>,
}

impl BitString {
    /// Creates an empty bit string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a bool slice.
    pub fn from_bits(bits: &[bool]) -> Self {
        Self {
            bits: bits.to_vec(),
        }
    }

    /// Builds from bytes, most-significant bit of each byte first.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut bits = Vec::with_capacity(bytes.len() * 8);
        for &byte in bytes {
            for i in (0..8).rev() {
                bits.push((byte >> i) & 1 == 1);
            }
        }
        Self { bits }
    }

    /// Builds from ASCII text (8 bits per character).
    pub fn from_ascii(text: &str) -> Self {
        Self::from_bytes(text.as_bytes())
    }

    /// Builds from a DNA sequence with the 2-bit encoding
    /// `A=00, C=01, G=10, T=11` (case-insensitive).
    ///
    /// # Panics
    ///
    /// Panics on characters outside `ACGT`.
    pub fn from_dna(seq: &str) -> Self {
        let mut bits = Vec::with_capacity(seq.len() * 2);
        for ch in seq.chars() {
            let code = match ch.to_ascii_uppercase() {
                'A' => 0b00u8,
                'C' => 0b01,
                'G' => 0b10,
                'T' => 0b11,
                other => panic!("invalid DNA base {other:?}"),
            };
            bits.push(code & 2 != 0);
            bits.push(code & 1 != 0);
        }
        Self { bits }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if the string holds no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Borrow the raw bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Pads with zero bits to a multiple of `align` bits.
    pub fn pad_to_multiple(&mut self, align: usize) {
        assert!(align > 0);
        while !self.bits.len().is_multiple_of(align) {
            self.bits.push(false);
        }
    }

    /// A sub-range as a new bit string.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, len: usize) -> Self {
        Self {
            bits: self.bits[start..start + len].to_vec(),
        }
    }

    /// The value of the `seg_bits`-wide segment `j`, most-significant bit
    /// first (paper §4.2.1: `T(j) = (b_{16j}, ..., b_{16j+15})`).
    ///
    /// Out-of-range bits read as zero (implicit padding).
    pub fn segment_value(&self, j: usize, seg_bits: usize) -> u64 {
        let mut v = 0u64;
        for b in 0..seg_bits {
            let idx = j * seg_bits + b;
            let bit = if idx < self.bits.len() {
                self.bits[idx]
            } else {
                false
            };
            v = (v << 1) | bit as u64;
        }
        v
    }

    /// Number of `seg_bits`-wide segments (rounding up).
    pub fn segment_count(&self, seg_bits: usize) -> usize {
        self.bits.len().div_ceil(seg_bits)
    }

    /// All positions (bit offsets) where `pattern` occurs — the plaintext
    /// ground truth every secure matcher is tested against.
    pub fn find_all(&self, pattern: &BitString) -> Vec<usize> {
        let k = pattern.len();
        if k == 0 || k > self.len() {
            return Vec::new();
        }
        (0..=self.len() - k)
            .filter(|&o| (0..k).all(|j| self.bits[o + j] == pattern.bits[j]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_msb_first() {
        let b = BitString::from_bytes(&[0b1010_0001]);
        assert_eq!(
            b.bits(),
            &[true, false, true, false, false, false, false, true]
        );
    }

    #[test]
    fn dna_two_bit_encoding() {
        let b = BitString::from_dna("ACGT");
        assert_eq!(b.len(), 8);
        // A=00 C=01 G=10 T=11
        assert_eq!(
            b.bits(),
            &[false, false, false, true, true, false, true, true]
        );
        assert_eq!(b, BitString::from_dna("acgt"));
    }

    #[test]
    #[should_panic(expected = "invalid DNA base")]
    fn dna_rejects_garbage() {
        let _ = BitString::from_dna("ACGX");
    }

    #[test]
    fn segment_values_msb_first() {
        // 16 bits: 0x1234
        let b = BitString::from_bytes(&[0x12, 0x34, 0xAB]);
        assert_eq!(b.segment_value(0, 16), 0x1234);
        // Second segment is 0xAB padded with zeros.
        assert_eq!(b.segment_value(1, 16), 0xAB00);
        assert_eq!(b.segment_count(16), 2);
        assert_eq!(b.segment_value(0, 8), 0x12);
    }

    #[test]
    fn find_all_positions() {
        let hay = BitString::from_bits(&[true, false, true, false, true]);
        let needle = BitString::from_bits(&[true, false, true]);
        assert_eq!(hay.find_all(&needle), vec![0, 2]);
        let missing = BitString::from_bits(&[true, true, true]);
        assert!(hay.find_all(&missing).is_empty());
    }

    #[test]
    fn find_all_handles_edge_patterns() {
        let hay = BitString::from_bytes(&[0xFF]);
        assert!(hay.find_all(&BitString::new()).is_empty());
        let exact = BitString::from_bytes(&[0xFF]);
        assert_eq!(hay.find_all(&exact), vec![0]);
        let too_long = BitString::from_bytes(&[0xFF, 0xFF]);
        assert!(hay.find_all(&too_long).is_empty());
    }

    #[test]
    fn pad_and_slice() {
        let mut b = BitString::from_bits(&[true, true, true]);
        b.pad_to_multiple(8);
        assert_eq!(b.len(), 8);
        assert_eq!(b.slice(0, 3).bits(), &[true, true, true]);
        assert!(!b.get(3));
    }

    #[test]
    fn ascii_roundtrip_via_find() {
        let db = BitString::from_ascii("hello world hello");
        let q = BitString::from_ascii("hello");
        assert_eq!(db.find_all(&q), vec![0, 12 * 8]);
    }
}
