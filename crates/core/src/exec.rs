//! The shared work-pool runtime every concurrent layer runs on.
//!
//! CIPHERMATCH's end-to-end win comes from keeping every level of the
//! stack busy — packed SIMD lanes, parallel flash channels, overlapped
//! data movement — and the serving stack mirrors that on the host side:
//! instead of one threading scheme per layer (scoped threads here, a
//! thread per shard there, a thread per connection somewhere else), every
//! layer submits jobs to one runtime:
//!
//! * [`WorkerPool`] — N long-lived worker threads behind one mpsc job
//!   queue, graceful drain-then-join shutdown on drop;
//! * [`CompletionHandle`] — a future-without-async for one submitted job:
//!   block on [`CompletionHandle::wait`], poll with
//!   [`CompletionHandle::is_finished`], or drop it to detach the job;
//! * [`ExecOutcome`] — one executed job's result bundled with the
//!   [`MatchStats`] it accumulated and its wall-clock `elapsed` time, so
//!   per-query accounting comes from job outcomes instead of racy
//!   reset/read deltas on shared state;
//! * [`MatcherPool`] — K `boxed_clone`'d matchers checked out per query,
//!   the primitive that lets one tenant's queries run concurrently.
//!
//! Worker threads never die with the jobs they run: a panicking job is
//! caught, reported as [`MatchError::WorkerPanicked`] through its handle,
//! and the worker moves on to the next job.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cm_telemetry::{metric_names, Counter, Gauge, Histogram, MetricsRegistry};

use crate::api::{ErasedMatcher, MatchError, MatchStats};

/// A type-erased unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The telemetry handles one [`WorkerPool`] records into. The default is
/// all no-ops; [`PoolMetrics::register`] wires a pool into a live
/// [`MetricsRegistry`] under a `pool` label.
#[derive(Debug, Clone, Default)]
pub struct PoolMetrics {
    /// Jobs enqueued and not yet picked up by a worker.
    pub queue_depth: Gauge,
    /// Submit → dequeue wait per job, µs.
    pub queue_wait: Histogram,
    /// Worker-side execution time per job, µs.
    pub run_time: Histogram,
    /// Jobs whose closure panicked on a worker.
    pub panics: Counter,
}

impl PoolMetrics {
    /// Registers the pool's four metrics in `registry`, labeling each
    /// with `pool` so several pools (frame pump, shard executors, bench
    /// clients) stay distinguishable in one exposition.
    pub fn register(registry: &MetricsRegistry, pool: &str) -> Self {
        let labels = [("pool", pool)];
        Self {
            queue_depth: registry.register_gauge(metric_names::EXEC_QUEUE_DEPTH, &labels),
            queue_wait: registry.register_histogram(metric_names::EXEC_QUEUE_WAIT_US, &labels),
            run_time: registry.register_histogram(metric_names::EXEC_RUN_TIME_US, &labels),
            panics: registry.register_counter(metric_names::EXEC_WORKER_PANICS, &labels),
        }
    }
}

/// Locks a mutex, riding through poisoning: the pool's internal critical
/// sections never panic, but a poisoned lock must not cascade into every
/// later submit/wait.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Completion handles
// ---------------------------------------------------------------------------

/// One executed job's result, with the statistics it accumulated and the
/// wall time it took on its worker.
#[derive(Debug, Clone)]
pub struct ExecOutcome<T> {
    /// What the job returned.
    pub result: T,
    /// The [`MatchStats`] this one job accumulated (exact per-job
    /// attribution — no reset/read delta on shared state).
    pub stats: MatchStats,
    /// Wall-clock time the job spent executing on its worker.
    pub elapsed: Duration,
}

enum SlotState<T> {
    Pending,
    Done(T),
    Panicked,
}

struct Slot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, state: SlotState<T>) {
        *lock_unpoisoned(&self.state) = state;
        self.cv.notify_all();
    }
}

/// The receiving end of one submitted job — a future without async.
///
/// Dropping the handle detaches the job: it still runs to completion on
/// its worker, its result is simply discarded.
pub struct CompletionHandle<T> {
    slot: Arc<Slot<T>>,
}

impl<T> std::fmt::Debug for CompletionHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl<T> CompletionHandle<T> {
    /// Whether the job has finished (successfully or by panicking).
    pub fn is_finished(&self) -> bool {
        !matches!(*lock_unpoisoned(&self.slot.state), SlotState::Pending)
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// # Errors
    ///
    /// [`MatchError::WorkerPanicked`] if the job panicked.
    pub fn wait(self) -> Result<T, MatchError> {
        let mut state = lock_unpoisoned(&self.slot.state);
        loop {
            match std::mem::replace(&mut *state, SlotState::Pending) {
                SlotState::Pending => {
                    state = self
                        .slot
                        .cv
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                SlotState::Done(value) => return Ok(value),
                SlotState::Panicked => return Err(MatchError::WorkerPanicked),
            }
        }
    }
}

/// Waits on a batch of handles, preserving submission order.
///
/// # Errors
///
/// [`MatchError::WorkerPanicked`] if any job panicked (remaining handles
/// are dropped, detaching their jobs).
pub fn wait_all<T>(handles: Vec<CompletionHandle<T>>) -> Result<Vec<T>, MatchError> {
    handles.into_iter().map(CompletionHandle::wait).collect()
}

// ---------------------------------------------------------------------------
// Scoped fan-out over borrowed data
// ---------------------------------------------------------------------------

/// Splits `items` into up to `workers` contiguous chunks and evaluates
/// `f` on each chunk concurrently, returning the per-chunk results in
/// chunk order.
///
/// This is the runtime's primitive for data-parallel sweeps over
/// *borrowed* state (an encrypted database, an evaluator, key material):
/// such jobs cannot ride the `'static` [`WorkerPool`] queue, so this is
/// the one blessed home for scoped threads — every other module submits
/// to a pool or calls this.
///
/// `workers == 1` (or a single chunk) runs inline on the caller's
/// thread.
///
/// # Errors
///
/// [`MatchError::InvalidConfig`] for a zero worker count;
/// [`MatchError::WorkerPanicked`] if any chunk's evaluation panicked.
pub fn fan_out<I: Sync, T: Send>(
    items: &[I],
    workers: usize,
    f: impl Fn(&[I]) -> T + Sync,
) -> Result<Vec<T>, MatchError> {
    if workers == 0 {
        return Err(MatchError::InvalidConfig("worker count must be positive"));
    }
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let chunk = items.len().div_ceil(workers);
    if workers == 1 || chunk >= items.len() {
        return Ok(vec![f(items)]);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || f(part)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| MatchError::WorkerPanicked))
            .collect()
    })
}

/// Runs a batch of heterogeneous borrowed closures concurrently and
/// returns their results in submission order — the scoped sibling of
/// [`wait_all`] for one-shot fan-outs whose tasks capture non-`'static`
/// state and do different things (e.g. an example driving several
/// tenants at once).
///
/// # Errors
///
/// [`MatchError::WorkerPanicked`] if any task panicked (the rest still
/// run to completion).
pub fn join_all<'env, T: Send>(
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
) -> Result<Vec<T>, MatchError> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks.into_iter().map(|task| scope.spawn(task)).collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| MatchError::WorkerPanicked))
            .collect()
    })
}

// ---------------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------------

struct Queue {
    jobs: Mutex<(VecDeque<Job>, bool)>, // (pending jobs, shutting down)
    cv: Condvar,
}

/// N long-lived worker threads behind one job queue.
///
/// Submitting never blocks (the queue is unbounded — admission control
/// belongs to the layer above, e.g. the TCP server's `max_inflight_frames`);
/// dropping the pool is a graceful shutdown: the queue closes, workers
/// drain every job already submitted, then join.
pub struct WorkerPool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
    metrics: PoolMetrics,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` long-lived threads.
    ///
    /// # Errors
    ///
    /// [`MatchError::InvalidConfig`] for a zero worker count.
    pub fn new(workers: usize) -> Result<Self, MatchError> {
        if workers == 0 {
            return Err(MatchError::InvalidConfig("worker count must be positive"));
        }
        let queue = Arc::new(Queue {
            jobs: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("cm-exec-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        Ok(Self {
            queue,
            workers: handles,
            metrics: PoolMetrics::default(),
        })
    }

    /// Installs telemetry handles for this pool (call before sharing the
    /// pool; handles registered later see only subsequent jobs).
    pub fn set_metrics(&mut self, metrics: PoolMetrics) {
        self.metrics = metrics;
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted but not yet picked up by a worker.
    pub fn queued_jobs(&self) -> usize {
        lock_unpoisoned(&self.queue.jobs).0.len()
    }

    /// Submits a job, returning the handle that will carry its result.
    /// A panic inside `job` is caught on the worker and surfaces as
    /// [`MatchError::WorkerPanicked`] from [`CompletionHandle::wait`].
    pub fn submit<T, F>(&self, job: F) -> CompletionHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let slot = Arc::new(Slot::new());
        let fill = Arc::clone(&slot);
        let metrics = self.metrics.clone();
        let enqueued = Instant::now();
        let run: Job = Box::new(move || {
            metrics.queue_wait.record_micros(enqueued.elapsed());
            metrics.queue_depth.add(-1);
            let running = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(job));
            // Record before filling the slot so a snapshot taken right
            // after `wait` returns already sees this job.
            metrics.run_time.record_micros(running.elapsed());
            match result {
                Ok(value) => fill.fill(SlotState::Done(value)),
                Err(_) => {
                    metrics.panics.inc();
                    fill.fill(SlotState::Panicked);
                }
            }
        });
        self.enqueue(run);
        CompletionHandle { slot }
    }

    /// Submits a fire-and-forget job whose result is delivered to
    /// `notify` *on the worker thread* instead of through a
    /// [`CompletionHandle`] — the completion-queue hook for callers
    /// that must not block (a reactor thread handing frames to the
    /// pool). A panic inside `job` reaches `notify` as
    /// [`MatchError::WorkerPanicked`]; a panic inside `notify` itself
    /// is swallowed so the worker survives either way.
    pub fn submit_notify<T, F, N>(&self, job: F, notify: N)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
        N: FnOnce(Result<T, MatchError>) + Send + 'static,
    {
        let metrics = self.metrics.clone();
        let enqueued = Instant::now();
        let run: Job = Box::new(move || {
            metrics.queue_wait.record_micros(enqueued.elapsed());
            metrics.queue_depth.add(-1);
            let running = Instant::now();
            let result =
                catch_unwind(AssertUnwindSafe(job)).map_err(|_| MatchError::WorkerPanicked);
            metrics.run_time.record_micros(running.elapsed());
            if result.is_err() {
                metrics.panics.inc();
            }
            let _ = catch_unwind(AssertUnwindSafe(move || notify(result)));
        });
        self.enqueue(run);
    }

    /// Enqueues a wrapped job and wakes one worker.
    fn enqueue(&self, run: Job) {
        self.metrics.queue_depth.add(1);
        {
            let mut guard = lock_unpoisoned(&self.queue.jobs);
            guard.0.push_back(run);
        }
        self.queue.cv.notify_one();
    }

    /// Submits a stats-producing job, timing it on the worker and bundling
    /// the result into an [`ExecOutcome`].
    pub fn submit_measured<T, F>(&self, job: F) -> CompletionHandle<ExecOutcome<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> (T, MatchStats) + Send + 'static,
    {
        self.submit(move || {
            let start = Instant::now();
            let (result, stats) = job();
            ExecOutcome {
                result,
                stats,
                elapsed: start.elapsed(),
            }
        })
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock_unpoisoned(&self.queue.jobs).1 = true;
        self.queue.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut guard = lock_unpoisoned(&queue.jobs);
            loop {
                if let Some(job) = guard.0.pop_front() {
                    break job;
                }
                if guard.1 {
                    return; // queue closed and drained
                }
                guard = queue
                    .cv
                    .wait(guard)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        job(); // panics are caught inside the job wrapper
    }
}

// ---------------------------------------------------------------------------
// Matcher checkout pools
// ---------------------------------------------------------------------------

/// K `boxed_clone`'d matchers checked out one per in-flight query.
///
/// Clones share the encrypted database (an `Arc` — see
/// [`ErasedMatcher::database_fingerprint`]), so a pool costs K copies of
/// the *key material and engine state only*, not K ciphertext copies.
/// [`MatcherPool::run`] checks a matcher out (blocking while all K are
/// busy), runs the query on the calling thread, and returns the exact
/// per-query [`MatchStats`] as an [`ExecOutcome`] — the matcher is
/// exclusively held, so the stats delta cannot race.
pub struct MatcherPool {
    idle: Mutex<Vec<Box<dyn ErasedMatcher>>>,
    cv: Condvar,
    size: usize,
}

impl std::fmt::Debug for MatcherPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatcherPool")
            .field("size", &self.size)
            .finish()
    }
}

impl MatcherPool {
    /// Builds a pool of `workers` matchers: the template plus
    /// `workers - 1` [`ErasedMatcher::boxed_clone`]s, each reseeded with a
    /// distinct randomness stream derived from `seed`.
    ///
    /// # Errors
    ///
    /// [`MatchError::InvalidConfig`] for a zero worker count.
    pub fn new(
        template: Box<dyn ErasedMatcher>,
        workers: usize,
        seed: u64,
    ) -> Result<Self, MatchError> {
        if workers == 0 {
            return Err(MatchError::InvalidConfig("worker count must be positive"));
        }
        let mut matchers = Vec::with_capacity(workers);
        for i in 1..workers {
            let mut clone = template.boxed_clone();
            clone.reseed(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            matchers.push(clone);
        }
        matchers.push(template);
        Ok(Self {
            idle: Mutex::new(matchers),
            cv: Condvar::new(),
            size: workers,
        })
    }

    /// The pool size K.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Checks a matcher out, blocking while all K are busy. The guard
    /// returns it to the pool on drop (including during unwinding).
    pub fn checkout(&self) -> MatcherGuard<'_> {
        let mut idle = lock_unpoisoned(&self.idle);
        let matcher = loop {
            if let Some(m) = idle.pop() {
                break m;
            }
            idle = self
                .cv
                .wait(idle)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        };
        MatcherGuard {
            pool: self,
            matcher: Some(matcher),
        }
    }

    /// Checks a matcher out, zeroes its counters, runs `f` on it, and
    /// returns `f`'s result with the exact stats and wall time of this one
    /// call.
    pub fn run<T>(&self, f: impl FnOnce(&mut dyn ErasedMatcher) -> T) -> ExecOutcome<T> {
        let mut guard = self.checkout();
        guard.reset_stats();
        let start = Instant::now();
        let result = f(&mut *guard);
        ExecOutcome {
            result,
            stats: guard.stats(),
            elapsed: start.elapsed(),
        }
    }

    /// Like [`Self::run`], but a panic inside `f` is caught and surfaced
    /// as [`MatchError::WorkerPanicked`] instead of unwinding through the
    /// caller — the serving path's guarantee that a hostile query can
    /// kill neither its connection worker nor the tenant's pool. The
    /// checked-out matcher is returned to the pool either way.
    ///
    /// # Errors
    ///
    /// [`MatchError::WorkerPanicked`] if `f` panicked.
    pub fn try_run<T>(
        &self,
        f: impl FnOnce(&mut dyn ErasedMatcher) -> T,
    ) -> Result<ExecOutcome<T>, MatchError> {
        let mut guard = self.checkout();
        guard.reset_stats();
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut *guard)))
            .map_err(|_| MatchError::WorkerPanicked)?;
        Ok(ExecOutcome {
            result,
            stats: guard.stats(),
            elapsed: start.elapsed(),
        })
    }

    fn give_back(&self, matcher: Box<dyn ErasedMatcher>) {
        lock_unpoisoned(&self.idle).push(matcher);
        self.cv.notify_one();
    }
}

/// An exclusively checked-out matcher; returns to its pool on drop.
pub struct MatcherGuard<'a> {
    pool: &'a MatcherPool,
    matcher: Option<Box<dyn ErasedMatcher>>,
}

impl std::ops::Deref for MatcherGuard<'_> {
    type Target = dyn ErasedMatcher;

    fn deref(&self) -> &Self::Target {
        self.matcher.as_deref().expect("matcher present until drop")
    }
}

impl std::ops::DerefMut for MatcherGuard<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.matcher
            .as_deref_mut()
            .expect("matcher present until drop")
    }
}

impl Drop for MatcherGuard<'_> {
    fn drop(&mut self) {
        if let Some(matcher) = self.matcher.take() {
            self.pool.give_back(matcher);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Backend, MatcherConfig};
    use crate::bits::BitString;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_jobs_and_returns_results_in_order() {
        let pool = WorkerPool::new(4).unwrap();
        let handles: Vec<_> = (0..32).map(|i| pool.submit(move || i * i)).collect();
        let results = wait_all(handles).unwrap();
        assert_eq!(results, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        assert_eq!(
            WorkerPool::new(0).err(),
            Some(MatchError::InvalidConfig("worker count must be positive"))
        );
    }

    #[test]
    fn dropping_the_pool_drains_queued_jobs() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1).unwrap();
            for _ in 0..16 {
                let ran = Arc::clone(&ran);
                drop(pool.submit(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                }));
            }
            // The single worker cannot have run all 16 yet; drop drains.
        }
        assert_eq!(ran.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn panicked_jobs_surface_without_killing_the_worker() {
        let pool = WorkerPool::new(1).unwrap();
        let bad = pool.submit(|| panic!("job dies"));
        let good = pool.submit(|| 7usize);
        assert_eq!(bad.wait(), Err(MatchError::WorkerPanicked));
        assert_eq!(good.wait(), Ok(7));
    }

    #[test]
    fn notify_jobs_deliver_results_on_the_worker() {
        let pool = WorkerPool::new(2).unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit_notify(|| 21usize * 2, move |result| tx.send(result).unwrap());
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            Ok(42usize)
        );
    }

    #[test]
    fn notify_jobs_surface_panics_as_worker_panicked() {
        let pool = WorkerPool::new(1).unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let tx2 = tx.clone();
        pool.submit_notify(
            || -> usize { panic!("job dies") },
            move |result| tx.send(result).unwrap(),
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            Err(MatchError::WorkerPanicked)
        );
        // The worker survives both a panicking job and a panicking
        // notify and keeps serving.
        pool.submit_notify(
            || 9usize,
            move |result| {
                tx2.send(result).unwrap();
                panic!("notify dies");
            },
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            Ok(9usize)
        );
        assert_eq!(pool.submit(|| 5usize).wait(), Ok(5));
    }

    #[test]
    fn measured_jobs_report_stats_and_elapsed() {
        let pool = WorkerPool::new(2).unwrap();
        let stats = MatchStats {
            hom_adds: 5,
            ..MatchStats::default()
        };
        let outcome = pool
            .submit_measured(move || {
                std::thread::sleep(Duration::from_millis(2));
                ("done", stats)
            })
            .wait()
            .unwrap();
        assert_eq!(outcome.result, "done");
        assert_eq!(outcome.stats.hom_adds, 5);
        assert!(outcome.elapsed >= Duration::from_millis(2));
    }

    #[test]
    fn pool_metrics_count_jobs_waits_and_panics() {
        let registry = MetricsRegistry::new();
        let mut pool = WorkerPool::new(1).unwrap();
        pool.set_metrics(PoolMetrics::register(&registry, "test"));
        let labels = [("pool", "test")];
        let bad = pool.submit(|| panic!("job dies"));
        let good = pool.submit(|| 1usize);
        assert_eq!(bad.wait(), Err(MatchError::WorkerPanicked));
        assert_eq!(good.wait(), Ok(1));
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(metric_names::EXEC_WORKER_PANICS, &labels),
            Some(1)
        );
        let waits = snap
            .histogram(metric_names::EXEC_QUEUE_WAIT_US, &labels)
            .unwrap();
        assert_eq!(waits.count, 2, "both jobs crossed the queue");
        let runs = snap
            .histogram(metric_names::EXEC_RUN_TIME_US, &labels)
            .unwrap();
        assert_eq!(runs.count, 2, "run time recorded even for a panic");
        assert_eq!(
            snap.gauge(metric_names::EXEC_QUEUE_DEPTH, &labels),
            Some(0),
            "depth returns to zero once drained"
        );
    }

    #[test]
    fn pool_actually_runs_jobs_concurrently() {
        let pool = WorkerPool::new(2).unwrap();
        let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                pool.submit(move || {
                    let (m, cv) = &*gate;
                    let mut in_flight = m.lock().unwrap();
                    *in_flight += 1;
                    cv.notify_all();
                    // Each job waits for the other: only possible if the
                    // pool really runs both at once.
                    while *in_flight < 2 {
                        let (guard, timeout) =
                            cv.wait_timeout(in_flight, Duration::from_secs(5)).unwrap();
                        in_flight = guard;
                        if timeout.timed_out() {
                            panic!("jobs never overlapped");
                        }
                    }
                })
            })
            .collect();
        wait_all(handles).unwrap();
    }

    #[test]
    fn matcher_pool_checkout_blocks_until_a_matcher_returns() {
        let template = MatcherConfig::new(Backend::Plain).build().unwrap();
        let pool = Arc::new(MatcherPool::new(template, 1, 0).unwrap());
        let guard = pool.checkout();
        let pool2 = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || {
            let _second = pool2.checkout(); // blocks until the guard drops
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "checkout must block while K=1 busy");
        drop(guard);
        waiter.join().unwrap();
    }

    #[test]
    fn matcher_pool_run_reports_exact_per_query_stats() {
        let mut template = MatcherConfig::new(Backend::Ciphermatch)
            .insecure_test()
            .seed(9)
            .build()
            .unwrap();
        let data = BitString::from_ascii("exact per-query attribution");
        template.load_database(&data).unwrap();
        let pool = MatcherPool::new(template, 2, 9).unwrap();
        let q = BitString::from_ascii("query");
        let first = pool.run(|m| m.find_all(&q).unwrap());
        let second = pool.run(|m| m.find_all(&q).unwrap());
        assert_eq!(first.result, data.find_all(&q));
        assert_eq!(second.result, data.find_all(&q));
        // Same query, zeroed counters each time: identical exact stats,
        // not an ever-growing lifetime aggregate.
        assert!(first.stats.hom_adds > 0);
        assert_eq!(first.stats.hom_adds, second.stats.hom_adds);
    }

    #[test]
    fn matcher_pool_clones_share_the_database_allocation() {
        let mut template = MatcherConfig::new(Backend::Ciphermatch)
            .insecure_test()
            .build()
            .unwrap();
        template
            .load_database(&BitString::from_ascii("shared among K workers"))
            .unwrap();
        let fingerprint = template.database_fingerprint().unwrap();
        let pool = MatcherPool::new(template, 3, 1).unwrap();
        // Hold all three checkouts at once so every distinct pool member
        // is inspected.
        let guards = [pool.checkout(), pool.checkout(), pool.checkout()];
        for guard in &guards {
            assert_eq!(guard.database_fingerprint(), Some(fingerprint));
        }
    }
}
