//! Key-owning adapters implementing [`SecureMatcher`] for every engine.
//!
//! Each adapter bundles an engine with the key material its protocol role
//! needs (mirroring how TFHE-style libraries expose one client/server-key
//! API over interchangeable ciphertext backends), normalizes every input
//! and output to *bit* strings and *bit* offsets, and converts the
//! engine-specific failure modes into [`MatchError`] values.

use std::sync::Arc;

use cm_bfv::{
    BfvContext, BfvParams, Decryptor, Encryptor, GaloisKeys, KeyGenerator, PublicKey, RelinKey,
    SecretKey,
};
use cm_tfhe::{BitCiphertext, ClientKey, ServerKey, TfheParams};
use rand::Rng;

use crate::api::{Backend, MatchError, MatchStats, SecureMatcher};
use crate::bits::BitString;
use crate::matchers::batched::{BatchedDatabase, BatchedEngine};
use crate::matchers::boolean::{BooleanDatabase, BooleanEngine, BooleanGateCount};
use crate::matchers::ciphermatch::{CiphermatchEngine, EncryptedDatabase, EncryptedQuery};
use crate::matchers::plain::bitwise_find_all;
use crate::matchers::yasuda::{YasudaDatabase, YasudaEngine, YasudaQuery};

/// The BFV key bundle shared by the three BFV-based adapters: context,
/// key pair, and the modulus width used for footprint accounting.
#[derive(Debug, Clone)]
struct BfvKeys {
    ctx: BfvContext,
    sk: SecretKey,
    pk: PublicKey,
    q_bits: u32,
}

impl BfvKeys {
    fn generate<R: Rng + ?Sized>(params: BfvParams, rng: &mut R) -> Self {
        let ctx = BfvContext::new(params);
        let kg = KeyGenerator::new(&ctx, rng);
        let sk = kg.secret_key();
        let pk = kg.public_key(rng);
        let q_bits = 64 - ctx.params().q.leading_zeros();
        Self {
            ctx,
            sk,
            pk,
            q_bits,
        }
    }

    fn encryptor(&self) -> Encryptor<'_> {
        Encryptor::new(&self.ctx, self.pk.clone())
    }

    fn decryptor(&self) -> Decryptor<'_> {
        Decryptor::new(&self.ctx, self.sk.clone())
    }
}

/// Engine counters plus the adapter-level extras, in one value.
fn merged(engine_stats: MatchStats, extra: &MatchStats) -> MatchStats {
    let mut s = engine_stats;
    s.merge(extra);
    s
}

/// CM-SW behind the unified API: dense packing, `Hom-Add`-only search,
/// arbitrary query lengths and bit offsets (the paper's contribution).
#[derive(Debug, Clone)]
pub struct CiphermatchMatcher {
    keys: BfvKeys,
    engine: CiphermatchEngine,
    threads: usize,
    extra: MatchStats,
}

impl CiphermatchMatcher {
    /// Generates keys and an engine for `params`; `threads > 1` runs the
    /// `Hom-Add` sweep on that many scoped worker threads.
    pub fn new<R: Rng + ?Sized>(
        params: BfvParams,
        threads: usize,
        rng: &mut R,
    ) -> Result<Self, MatchError> {
        if threads == 0 {
            return Err(MatchError::InvalidConfig("threads must be positive"));
        }
        let keys = BfvKeys::generate(params, rng);
        Ok(Self {
            engine: CiphermatchEngine::new(&keys.ctx),
            keys,
            threads,
            extra: MatchStats::default(),
        })
    }
}

impl SecureMatcher for CiphermatchMatcher {
    type Database = EncryptedDatabase;
    type Query = EncryptedQuery;
    type Stats = MatchStats;

    fn backend(&self) -> Backend {
        Backend::Ciphermatch
    }

    fn encrypt_database<R: Rng + ?Sized>(
        &mut self,
        data: &BitString,
        rng: &mut R,
    ) -> Result<Self::Database, MatchError> {
        Ok(self
            .engine
            .encrypt_database(&self.keys.encryptor(), data, rng))
    }

    fn prepare_query<R: Rng + ?Sized>(
        &mut self,
        query: &BitString,
        rng: &mut R,
    ) -> Result<Self::Query, MatchError> {
        if query.is_empty() {
            return Err(MatchError::EmptyQuery);
        }
        Ok(self
            .engine
            .prepare_query(&self.keys.encryptor(), query, rng))
    }

    fn find_all<R: Rng + ?Sized>(
        &mut self,
        db: &Self::Database,
        query: &Self::Query,
        _rng: &mut R,
    ) -> Result<Vec<usize>, MatchError> {
        self.extra.bytes_moved += query.byte_size(self.keys.q_bits) as u64;
        let result = if self.threads > 1 {
            self.engine.search_parallel(db, query, self.threads)?
        } else {
            self.engine.search(db, query)
        };
        Ok(self
            .engine
            .generate_indices(&self.keys.decryptor(), &result))
    }

    fn decode_query(&self, encoded: &[u8]) -> Result<Self::Query, MatchError> {
        Ok(EncryptedQuery::decode_validated(
            encoded,
            self.keys.ctx.params().n,
            self.engine.packing().seg_bits(),
            self.keys.ctx.params().q,
        )?)
    }

    fn encode_database(&self, db: &Self::Database) -> Result<Vec<u8>, MatchError> {
        Ok(db.encode(self.keys.q_bits))
    }

    fn decode_database(&self, encoded: &[u8]) -> Result<Self::Database, MatchError> {
        let db = EncryptedDatabase::decode(encoded)?;
        db.validate(
            self.keys.ctx.params().n,
            self.keys.ctx.params().q,
            self.engine.packing().bits_per_poly(),
        )?;
        Ok(db)
    }

    fn database_bytes(&self, db: &Self::Database) -> u64 {
        db.byte_size(self.keys.q_bits) as u64
    }

    fn stats(&self) -> MatchStats {
        merged(self.engine.stats(), &self.extra)
    }

    fn reset_stats(&mut self) {
        self.engine.reset_stats();
        self.extra = MatchStats::default();
    }
}

/// Yasuda et al. \[27\] behind the unified API: Hamming-distance matching
/// with a *fixed* query window — queries of any other length return
/// [`MatchError::WindowMismatch`], the Table 1 inflexibility made typed.
#[derive(Debug, Clone)]
pub struct YasudaMatcher {
    keys: BfvKeys,
    engine: YasudaEngine,
    window: usize,
    extra: MatchStats,
}

impl YasudaMatcher {
    /// Generates keys and an engine; database blocks will be laid out for
    /// queries of exactly `window` bits.
    pub fn new<R: Rng + ?Sized>(
        params: BfvParams,
        window: usize,
        rng: &mut R,
    ) -> Result<Self, MatchError> {
        if window == 0 {
            return Err(MatchError::InvalidConfig("window must be positive"));
        }
        if window > params.n {
            return Err(MatchError::InvalidConfig("window exceeds the ring degree"));
        }
        let keys = BfvKeys::generate(params, rng);
        Ok(Self {
            engine: YasudaEngine::new(&keys.ctx),
            keys,
            window,
            extra: MatchStats::default(),
        })
    }
}

impl SecureMatcher for YasudaMatcher {
    type Database = YasudaDatabase;
    type Query = YasudaQuery;
    type Stats = MatchStats;

    fn backend(&self) -> Backend {
        Backend::Yasuda
    }

    fn encrypt_database<R: Rng + ?Sized>(
        &mut self,
        data: &BitString,
        rng: &mut R,
    ) -> Result<Self::Database, MatchError> {
        Ok(self
            .engine
            .encrypt_database(&self.keys.encryptor(), data, self.window, rng))
    }

    fn prepare_query<R: Rng + ?Sized>(
        &mut self,
        query: &BitString,
        rng: &mut R,
    ) -> Result<Self::Query, MatchError> {
        if query.is_empty() {
            return Err(MatchError::EmptyQuery);
        }
        if query.len() != self.window {
            return Err(MatchError::WindowMismatch {
                expected: self.window,
                got: query.len(),
            });
        }
        Ok(self
            .engine
            .prepare_query(&self.keys.encryptor(), query, rng))
    }

    fn find_all<R: Rng + ?Sized>(
        &mut self,
        db: &Self::Database,
        query: &Self::Query,
        _rng: &mut R,
    ) -> Result<Vec<usize>, MatchError> {
        if query.k() != db.window() {
            return Err(MatchError::WindowMismatch {
                expected: db.window(),
                got: query.k(),
            });
        }
        self.extra.bytes_moved += query.byte_size(self.keys.q_bits) as u64;
        Ok(self
            .engine
            .search_prepared(&self.keys.decryptor(), db, query, 0)
            .into_iter()
            .map(|(offset, _)| offset)
            .collect())
    }

    fn database_bytes(&self, db: &Self::Database) -> u64 {
        db.byte_size(self.keys.q_bits) as u64
    }

    fn stats(&self) -> MatchStats {
        merged(self.engine.stats(), &self.extra)
    }

    fn reset_stats(&mut self) {
        self.engine.reset_stats();
        self.extra = MatchStats::default();
    }
}

/// The SIMD-batched baseline \[34, 29\] behind the unified API.
///
/// The adapter runs the engine at **bit granularity** (one slot symbol per
/// database bit) so that, like every other backend, it returns exact bit
/// offsets for arbitrary bit patterns up to the provisioned window. The
/// symbol-level engine remains available directly for byte-alphabet
/// workloads. Cost profile is unchanged in kind: one rotation + one
/// squaring per query bit per block.
#[derive(Debug, Clone)]
pub struct BatchedMatcher {
    keys: BfvKeys,
    rk: RelinKey,
    gk: GaloisKeys,
    engine: BatchedEngine,
    window: usize,
    extra: MatchStats,
}

impl BatchedMatcher {
    /// Generates keys (relinearization plus Galois keys for rotations
    /// `1..window`) and an engine; queries may be up to `window` bits.
    pub fn new<R: Rng + ?Sized>(
        params: BfvParams,
        window: usize,
        rng: &mut R,
    ) -> Result<Self, MatchError> {
        let keys = BfvKeys::generate(params, rng);
        let slots = keys.ctx.params().n / 2;
        if window == 0 {
            return Err(MatchError::InvalidConfig("window must be positive"));
        }
        if window > slots {
            return Err(MatchError::InvalidConfig(
                "window exceeds the usable slots per block",
            ));
        }
        let kg = KeyGenerator::from_secret(&keys.ctx, keys.sk.clone());
        let rk = kg.relin_key(rng);
        let gk = kg.galois_keys(&kg.galois_elements_for_rotations(window), rng);
        Ok(Self {
            engine: BatchedEngine::new(&keys.ctx),
            keys,
            rk,
            gk,
            window,
            extra: MatchStats::default(),
        })
    }
}

impl SecureMatcher for BatchedMatcher {
    type Database = BatchedDatabase;
    type Query = Vec<u64>;
    type Stats = MatchStats;

    fn backend(&self) -> Backend {
        Backend::Batched
    }

    fn encrypt_database<R: Rng + ?Sized>(
        &mut self,
        data: &BitString,
        rng: &mut R,
    ) -> Result<Self::Database, MatchError> {
        let symbols: Vec<u64> = data.bits().iter().map(|&b| b as u64).collect();
        Ok(self
            .engine
            .encrypt_database(&self.keys.encryptor(), &symbols, self.window, rng))
    }

    fn prepare_query<R: Rng + ?Sized>(
        &mut self,
        query: &BitString,
        _rng: &mut R,
    ) -> Result<Self::Query, MatchError> {
        if query.is_empty() {
            return Err(MatchError::EmptyQuery);
        }
        if query.len() > self.window {
            return Err(MatchError::QueryTooLong {
                max: self.window,
                got: query.len(),
            });
        }
        // In this baseline the query stays plaintext on the server (the
        // scheme hides the database, not the pattern).
        Ok(query.bits().iter().map(|&b| b as u64).collect())
    }

    fn find_all<R: Rng + ?Sized>(
        &mut self,
        db: &Self::Database,
        query: &Self::Query,
        rng: &mut R,
    ) -> Result<Vec<usize>, MatchError> {
        if query.is_empty() {
            return Err(MatchError::EmptyQuery);
        }
        if query.len() > db.max_query() {
            return Err(MatchError::QueryTooLong {
                max: db.max_query(),
                got: query.len(),
            });
        }
        let enc = self.keys.encryptor();
        let dec = self.keys.decryptor();
        Ok(self
            .engine
            .find_all(&enc, &dec, &self.rk, &self.gk, db, query, rng))
    }

    fn database_bytes(&self, db: &Self::Database) -> u64 {
        db.byte_size(self.keys.q_bits) as u64
    }

    fn stats(&self) -> MatchStats {
        merged(self.engine.stats(), &self.extra)
    }

    fn reset_stats(&mut self) {
        self.engine.reset_stats();
        self.extra = MatchStats::default();
    }
}

/// The Boolean TFHE baseline \[17, 33\] behind the unified API: one LWE
/// ciphertext per bit, `2k - 1` bootstrapped gates per window.
///
/// Key material is shared behind [`Arc`] so cloned workers reuse the same
/// (expensive) bootstrapping key; `bootstraps` is counted analytically via
/// [`BooleanGateCount`], which the engine's tests pin to the executed gate
/// count.
#[derive(Debug, Clone)]
pub struct BooleanMatcher {
    client: Arc<ClientKey>,
    server: Arc<ServerKey>,
    threads: usize,
    stats: MatchStats,
}

impl BooleanMatcher {
    /// Generates client and server TFHE keys; `threads > 1` evaluates
    /// windows on that many scoped worker threads.
    pub fn new<R: Rng + ?Sized>(
        params: TfheParams,
        threads: usize,
        rng: &mut R,
    ) -> Result<Self, MatchError> {
        if threads == 0 {
            return Err(MatchError::InvalidConfig("threads must be positive"));
        }
        let client = ClientKey::generate(params, rng);
        let server = ServerKey::generate(&client, rng);
        Ok(Self {
            client: Arc::new(client),
            server: Arc::new(server),
            threads,
            stats: MatchStats::default(),
        })
    }
}

impl SecureMatcher for BooleanMatcher {
    type Database = BooleanDatabase;
    type Query = Vec<BitCiphertext>;
    type Stats = MatchStats;

    fn backend(&self) -> Backend {
        Backend::Boolean
    }

    fn encrypt_database<R: Rng + ?Sized>(
        &mut self,
        data: &BitString,
        rng: &mut R,
    ) -> Result<Self::Database, MatchError> {
        let engine = BooleanEngine::new(self.client.as_ref(), self.server.as_ref());
        Ok(engine.encrypt_database(data, rng))
    }

    fn prepare_query<R: Rng + ?Sized>(
        &mut self,
        query: &BitString,
        rng: &mut R,
    ) -> Result<Self::Query, MatchError> {
        if query.is_empty() {
            return Err(MatchError::EmptyQuery);
        }
        Ok(self.client.encrypt_bits(query.bits(), rng))
    }

    fn find_all<R: Rng + ?Sized>(
        &mut self,
        db: &Self::Database,
        query: &Self::Query,
        _rng: &mut R,
    ) -> Result<Vec<usize>, MatchError> {
        let k = query.len();
        if k == 0 {
            return Err(MatchError::EmptyQuery);
        }
        if db.len() < k {
            return Ok(Vec::new());
        }
        self.stats.bytes_moved +=
            (query.len() * self.client.params().lwe_ciphertext_bytes()) as u64;
        self.stats.bootstraps += BooleanGateCount::for_search(db.len(), k).total();
        let engine = BooleanEngine::new(self.client.as_ref(), self.server.as_ref());
        let windows: Vec<usize> = (0..=db.len() - k).collect();
        if self.threads <= 1 {
            return Ok(windows
                .into_iter()
                .filter(|&o| self.client.decrypt(&engine.match_window(db, query, o)))
                .collect());
        }
        let engine = &engine;
        let client = &self.client;
        let mut matches: Vec<usize> = crate::exec::fan_out(&windows, self.threads, |chunk| {
            chunk
                .iter()
                .filter(|&&o| client.decrypt(&engine.match_window(db, query, o)))
                .copied()
                .collect::<Vec<_>>()
        })?
        .into_iter()
        .flatten()
        .collect();
        matches.sort_unstable();
        Ok(matches)
    }

    fn database_bytes(&self, db: &Self::Database) -> u64 {
        db.byte_size(self.client.params().lwe_dim) as u64
    }

    fn stats(&self) -> MatchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
    }
}

/// The unencrypted word-packed reference matcher (§2.2 / §3.1's "5.9 µs
/// unencrypted" comparison point) behind the unified API.
#[derive(Debug, Clone, Default)]
pub struct PlainMatcher {
    stats: MatchStats,
}

impl PlainMatcher {
    /// Creates the reference matcher (no keys, no parameters).
    pub fn new() -> Self {
        Self::default()
    }
}

impl SecureMatcher for PlainMatcher {
    type Database = BitString;
    type Query = BitString;
    type Stats = MatchStats;

    fn backend(&self) -> Backend {
        Backend::Plain
    }

    fn encrypt_database<R: Rng + ?Sized>(
        &mut self,
        data: &BitString,
        _rng: &mut R,
    ) -> Result<Self::Database, MatchError> {
        Ok(data.clone())
    }

    fn prepare_query<R: Rng + ?Sized>(
        &mut self,
        query: &BitString,
        _rng: &mut R,
    ) -> Result<Self::Query, MatchError> {
        if query.is_empty() {
            return Err(MatchError::EmptyQuery);
        }
        Ok(query.clone())
    }

    fn find_all<R: Rng + ?Sized>(
        &mut self,
        db: &Self::Database,
        query: &Self::Query,
        _rng: &mut R,
    ) -> Result<Vec<usize>, MatchError> {
        self.stats.bytes_moved += db.len().div_ceil(8) as u64;
        Ok(bitwise_find_all(db, query))
    }

    fn encode_database(&self, db: &Self::Database) -> Result<Vec<u8>, MatchError> {
        // A minimal serialized form (bit count + MSB-first packed bytes)
        // so the unencrypted reference participates in the remote
        // database lifecycle — and gives the serving tests a fast wire
        // database format.
        let mut out = Vec::with_capacity(8 + db.len().div_ceil(8));
        out.extend_from_slice(&(db.len() as u64).to_le_bytes());
        let mut packed = vec![0u8; db.len().div_ceil(8)];
        for (i, &bit) in db.bits().iter().enumerate() {
            if bit {
                packed[i / 8] |= 1 << (7 - i % 8);
            }
        }
        out.extend_from_slice(&packed);
        Ok(out)
    }

    fn decode_database(&self, encoded: &[u8]) -> Result<Self::Database, MatchError> {
        use cm_bfv::DecodeError;
        let header: [u8; 8] = encoded
            .get(..8)
            .and_then(|h| h.try_into().ok())
            .ok_or(MatchError::Decode(DecodeError::Truncated))?;
        let bit_len = u64::from_le_bytes(header) as usize;
        // Check the length *before* trusting the header for an
        // allocation: a lying bit count must not balloon memory.
        if encoded.len() - 8 != bit_len.div_ceil(8) {
            return Err(MatchError::Decode(DecodeError::BadHeader(
                "bit count vs payload length",
            )));
        }
        let packed = &encoded[8..];
        let mut bits = Vec::with_capacity(bit_len);
        for i in 0..bit_len {
            bits.push(packed[i / 8] >> (7 - i % 8) & 1 == 1);
        }
        Ok(BitString::from_bits(&bits))
    }

    fn database_bytes(&self, db: &Self::Database) -> u64 {
        db.len().div_ceil(8) as u64
    }

    fn stats(&self) -> MatchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
    }
}
