//! The typed error surface of the matching protocol.
//!
//! Every failure a client, server, or session can hit on the protocol path
//! is a [`MatchError`] variant — panics are reserved for programmer errors
//! inside the engines (violated internal invariants), never for malformed
//! input or misconfiguration.

use cm_bfv::DecodeError;

use crate::api::Backend;

/// Everything that can go wrong on the secure-matching protocol path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchError {
    /// TrustedController-mode index generation was requested but no
    /// [`crate::TrustedIndexGenerator`] was installed on the server.
    NoIndexGenerator,
    /// No database has been loaded into the matcher/session yet.
    NoDatabase,
    /// A serialized database or ciphertext failed to decode.
    Decode(DecodeError),
    /// The query is empty; an empty pattern has no well-defined matches.
    EmptyQuery,
    /// The query exceeds the length the database was provisioned for
    /// (Table 1: arithmetic baselines fix the query size at layout time).
    QueryTooLong {
        /// Maximum query length (bits) the database layout supports.
        max: usize,
        /// Length of the offending query in bits.
        got: usize,
    },
    /// The query length does not equal the fixed window the database
    /// blocks were laid out for (the Yasuda \[27\] restriction).
    WindowMismatch {
        /// Window width (bits) the database was laid out for.
        expected: usize,
        /// Length of the offending query in bits.
        got: usize,
    },
    /// A configuration value is invalid for the selected backend.
    InvalidConfig(&'static str),
    /// A search worker thread panicked; the batch cannot be trusted.
    WorkerPanicked,
    /// A query arrived in a backend's native wire format, but this backend
    /// defines no such format (only the CIPHERMATCH family does).
    WireQueryUnsupported(Backend),
    /// A backend name failed to parse (see [`Backend::parse`]).
    UnknownBackend(String),
    /// A request named a tenant the serving process has not registered.
    UnknownTenant(String),
    /// The serving process is at one of its admission caps — open
    /// sockets (`max_open_sockets`) or concurrently queued request
    /// frames (`max_inflight_frames`) — and rejected the work with this
    /// typed error instead of growing past the bound.
    ServerBusy {
        /// The admission cap the server enforced (whichever of the two
        /// was exceeded). Renamed from `max_connections`; the wire slot
        /// is positional, so old peers decode it unchanged.
        max_open_sockets: usize,
    },
    /// A wire frame or message violated the protocol framing rules.
    Frame(&'static str),
    /// The transport under the wire protocol failed (socket I/O).
    Transport(String),
    /// The request failed its authorization check: a channel-key proof did
    /// not verify, a channel key did not match the tenant's provisioned
    /// key, or an upload nonce was replayed. The registry state is left
    /// untouched.
    Unauthorized(&'static str),
    /// Admitting a database would exceed the host memory budget even
    /// after every evictable tenant was demoted to the cold tier.
    QuotaExceeded {
        /// The configured host memory budget in bytes.
        budget: u64,
        /// The bytes the rejected database needed.
        required: u64,
    },
    /// A chunked database upload violated its declared shape: a chunk out
    /// of order or duplicated, data overrunning the declared size, or a
    /// commit before every declared chunk arrived.
    UploadIncomplete(&'static str),
    /// A database arrived in a backend's native serialized format, but
    /// this backend defines no such format (only the CIPHERMATCH family
    /// and the plaintext reference do).
    WireDatabaseUnsupported(Backend),
    /// The peer closed the connection before answering the in-flight
    /// request (e.g. the server hung up mid-upload).
    ConnectionClosed,
    /// A server-side internal invariant did not hold (the typed stand-in
    /// for what would otherwise be a panic on the serving path: request
    /// handling must answer with a wire error frame, never unwind a
    /// worker).
    Internal(&'static str),
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchError::NoIndexGenerator => {
                write!(f, "TrustedController mode requires install_index_generator")
            }
            MatchError::NoDatabase => {
                write!(f, "no database loaded; call load_database first")
            }
            MatchError::Decode(e) => write!(f, "malformed encrypted database: {e}"),
            MatchError::EmptyQuery => write!(f, "query must be non-empty"),
            MatchError::QueryTooLong { max, got } => write!(
                f,
                "query of {got} bits exceeds the provisioned maximum of {max} bits"
            ),
            MatchError::WindowMismatch { expected, got } => write!(
                f,
                "query of {got} bits does not match the fixed {expected}-bit window \
                 the database was laid out for"
            ),
            MatchError::InvalidConfig(what) => write!(f, "invalid matcher configuration: {what}"),
            MatchError::WorkerPanicked => write!(f, "a search worker thread panicked"),
            MatchError::WireQueryUnsupported(backend) => write!(
                f,
                "backend {backend} has no native encrypted-query wire format"
            ),
            MatchError::UnknownBackend(name) => write!(f, "unknown backend name {name:?}"),
            MatchError::UnknownTenant(id) => write!(f, "unknown tenant {id:?}"),
            MatchError::ServerBusy { max_open_sockets } => write!(
                f,
                "server is at its admission cap of {max_open_sockets}; retry later"
            ),
            MatchError::Frame(what) => write!(f, "malformed wire frame: {what}"),
            MatchError::Transport(what) => write!(f, "transport failure: {what}"),
            MatchError::Unauthorized(what) => write!(f, "unauthorized: {what}"),
            MatchError::QuotaExceeded { budget, required } => write!(
                f,
                "database of {required} bytes exceeds the {budget}-byte host memory budget"
            ),
            MatchError::UploadIncomplete(what) => write!(f, "incomplete upload: {what}"),
            MatchError::WireDatabaseUnsupported(backend) => write!(
                f,
                "backend {backend} has no serialized-database wire format"
            ),
            MatchError::ConnectionClosed => {
                write!(f, "the peer closed the connection mid-request")
            }
            MatchError::Internal(what) => {
                write!(f, "internal server invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for MatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MatchError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for MatchError {
    fn from(e: DecodeError) -> Self {
        MatchError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MatchError::NoIndexGenerator
            .to_string()
            .contains("install_index_generator"));
        assert!(MatchError::QueryTooLong { max: 8, got: 9 }
            .to_string()
            .contains("9 bits"));
        let e: MatchError = DecodeError::Truncated.into();
        assert!(e.to_string().contains("truncated"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
