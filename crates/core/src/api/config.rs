//! Dynamic backend selection: the [`Backend`] enum, the [`MatcherConfig`]
//! builder, and the object-safe [`ErasedMatcher`] wrapper that lets
//! heterogeneous matchers live in one registry (`Vec<Box<dyn
//! ErasedMatcher>>`) or behind a [`crate::MatchSession`].

use cm_bfv::BfvParams;
use cm_tfhe::TfheParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::api::backends::{
    BatchedMatcher, BooleanMatcher, CiphermatchMatcher, PlainMatcher, YasudaMatcher,
};
use crate::api::{MatchError, MatchStats, SecureMatcher};
use crate::bits::BitString;

/// The implemented secure-matching approaches (the rows of Table 1 that
/// this repository reproduces, plus the unencrypted reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// CM-SW: dense packing + `Hom-Add`-only search (this paper).
    Ciphermatch,
    /// Yasuda et al. \[27\]: Hamming distance, 2 Hom-Mul + 3 Hom-Add per
    /// block, fixed query window.
    Yasuda,
    /// Kim \[34\] / Bonte \[29\]-style SIMD batching: rotations +
    /// squarings over slots, bounded query window.
    Batched,
    /// Aziz \[17\] / Pradel \[33\]-style Boolean TFHE: per-bit LWE,
    /// `2k - 1` bootstrapped gates per window.
    Boolean,
    /// The unencrypted word-packed reference.
    Plain,
}

impl Backend {
    /// Every implemented backend, in the paper's comparison order.
    pub const ALL: [Backend; 5] = [
        Backend::Ciphermatch,
        Backend::Yasuda,
        Backend::Batched,
        Backend::Boolean,
        Backend::Plain,
    ];

    /// A short stable identifier (usable in CLI arguments and bench IDs).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Ciphermatch => "ciphermatch",
            Backend::Yasuda => "yasuda",
            Backend::Batched => "batched",
            Backend::Boolean => "boolean",
            Backend::Plain => "plain",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder that selects and constructs a backend dynamically.
///
/// ```
/// use cm_core::{Backend, BitString, MatcherConfig};
///
/// let mut matcher = MatcherConfig::new(Backend::Ciphermatch)
///     .insecure_test()
///     .seed(7)
///     .build()
///     .unwrap();
/// matcher
///     .load_database(&BitString::from_ascii("abcabc"))
///     .unwrap();
/// let hits = matcher.find_all(&BitString::from_ascii("bc")).unwrap();
/// assert_eq!(hits, vec![8, 32]);
/// ```
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    backend: Backend,
    seed: u64,
    window: usize,
    threads: usize,
    insecure: bool,
    bfv_params: Option<BfvParams>,
    tfhe_params: Option<TfheParams>,
}

impl MatcherConfig {
    /// Starts a configuration for `backend` with the defaults: seed 0,
    /// a 32-bit query window, one thread, and the paper's parameter sets.
    pub fn new(backend: Backend) -> Self {
        Self {
            backend,
            seed: 0,
            window: 32,
            threads: 1,
            insecure: false,
            bfv_params: None,
            tfhe_params: None,
        }
    }

    /// Seeds key generation and query encryption (determinism for tests
    /// and reproducible benchmarks).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fixed/maximum query length in bits for the window-bound backends:
    /// Yasuda requires queries of *exactly* this length, Batched accepts
    /// *up to* this length. Ignored by the flexible-query backends.
    pub fn window(mut self, bits: usize) -> Self {
        self.window = bits;
        self
    }

    /// Number of scoped worker threads used for one search when the
    /// matcher is built directly via [`Self::build`] (CM-SW's parallel
    /// `Hom-Add` sweep, Boolean window fan-out).
    /// [`crate::MatchSession::new`] instead spends this same budget on
    /// per-query fan-out — its workers search serially — so the total
    /// number of concurrent search threads is always bounded by this one
    /// value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Switches to the small, fast, **insecure** test parameter sets —
    /// for unit tests and CI only.
    pub fn insecure_test(mut self) -> Self {
        self.insecure = true;
        self
    }

    /// Overrides the BFV parameter set (Ciphermatch/Yasuda/Batched).
    pub fn bfv_params(mut self, params: BfvParams) -> Self {
        self.bfv_params = Some(params);
        self
    }

    /// Overrides the TFHE parameter set (Boolean).
    pub fn tfhe_params(mut self, params: TfheParams) -> Self {
        self.tfhe_params = Some(params);
        self
    }

    /// The selected backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The configured seed.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The configured per-search thread count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Generates keys and constructs the configured backend behind the
    /// object-safe [`ErasedMatcher`] interface.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::InvalidConfig`] when a knob is out of range
    /// for the selected backend (zero threads, zero window, window larger
    /// than the ring/slot capacity).
    pub fn build(&self) -> Result<Box<dyn ErasedMatcher>, MatchError> {
        if self.threads == 0 {
            return Err(MatchError::InvalidConfig("threads must be positive"));
        }
        if self.window == 0 {
            return Err(MatchError::InvalidConfig("window must be positive"));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let bfv = |default: fn() -> BfvParams, test: fn() -> BfvParams| {
            self.bfv_params
                .clone()
                .unwrap_or_else(if self.insecure { test } else { default })
        };
        Ok(match self.backend {
            Backend::Ciphermatch => erase(
                CiphermatchMatcher::new(
                    bfv(BfvParams::ciphermatch_1024, BfvParams::insecure_test_add),
                    self.threads,
                    &mut rng,
                )?,
                self.seed,
            ),
            Backend::Yasuda => erase(
                YasudaMatcher::new(
                    bfv(BfvParams::arithmetic_2048, BfvParams::insecure_test_mul),
                    self.window,
                    &mut rng,
                )?,
                self.seed,
            ),
            Backend::Batched => erase(
                BatchedMatcher::new(
                    bfv(BfvParams::batching_1024, BfvParams::insecure_test_batch),
                    self.window,
                    &mut rng,
                )?,
                self.seed,
            ),
            Backend::Boolean => {
                let params = self.tfhe_params.clone().unwrap_or_else(if self.insecure {
                    TfheParams::fast_insecure_test
                } else {
                    TfheParams::boolean_default
                });
                erase(
                    BooleanMatcher::new(params, self.threads, &mut rng)?,
                    self.seed,
                )
            }
            Backend::Plain => erase(PlainMatcher::new(), self.seed),
        })
    }
}

/// The object-safe face of a [`SecureMatcher`]: database and query types
/// erased, randomness owned, so heterogeneous backends can share a
/// registry or a [`crate::MatchSession`].
pub trait ErasedMatcher: Send {
    /// Which backend this matcher is.
    fn backend(&self) -> Backend;

    /// Encrypts `data` with this matcher's keys and stores it as *the*
    /// database subsequent [`Self::find_all`] calls search.
    fn load_database(&mut self, data: &BitString) -> Result<(), MatchError>;

    /// True once a database has been loaded.
    fn has_database(&self) -> bool;

    /// Encrypted footprint in bytes of the loaded database (Fig. 2a's
    /// y-axis), if one is loaded.
    fn database_bytes(&self) -> Option<u64>;

    /// Prepares (encrypts) `query` and searches the loaded database,
    /// returning the matching bit offsets.
    fn find_all(&mut self, query: &BitString) -> Result<Vec<usize>, MatchError>;

    /// Statistics accumulated since construction or the last reset.
    fn stats(&self) -> MatchStats;

    /// Resets the statistics counters.
    fn reset_stats(&mut self);

    /// Replaces the matcher's query-encryption randomness stream (workers
    /// cloned from one template must not share a stream).
    fn reseed(&mut self, seed: u64);

    /// Clones this matcher — keys, loaded database, statistics — into a
    /// new boxed worker.
    fn boxed_clone(&self) -> Box<dyn ErasedMatcher>;
}

/// Boxes a [`SecureMatcher`] behind [`ErasedMatcher`].
pub fn erase<M>(matcher: M, seed: u64) -> Box<dyn ErasedMatcher>
where
    M: SecureMatcher<Stats = MatchStats> + Clone + Send + 'static,
    M::Database: Clone + Send,
{
    Box::new(Erased {
        matcher,
        db: None,
        rng: StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
    })
}

/// The concrete adapter behind [`erase`].
struct Erased<M: SecureMatcher> {
    matcher: M,
    db: Option<M::Database>,
    rng: StdRng,
}

impl<M> ErasedMatcher for Erased<M>
where
    M: SecureMatcher<Stats = MatchStats> + Clone + Send + 'static,
    M::Database: Clone + Send,
{
    fn backend(&self) -> Backend {
        self.matcher.backend()
    }

    fn load_database(&mut self, data: &BitString) -> Result<(), MatchError> {
        let db = self.matcher.encrypt_database(data, &mut self.rng)?;
        self.db = Some(db);
        Ok(())
    }

    fn has_database(&self) -> bool {
        self.db.is_some()
    }

    fn database_bytes(&self) -> Option<u64> {
        self.db.as_ref().map(|db| self.matcher.database_bytes(db))
    }

    fn find_all(&mut self, query: &BitString) -> Result<Vec<usize>, MatchError> {
        if self.db.is_none() {
            return Err(MatchError::NoDatabase);
        }
        let q = self.matcher.prepare_query(query, &mut self.rng)?;
        let db = self.db.as_ref().ok_or(MatchError::NoDatabase)?;
        self.matcher.find_all(db, &q, &mut self.rng)
    }

    fn stats(&self) -> MatchStats {
        self.matcher.stats()
    }

    fn reset_stats(&mut self) {
        self.matcher.reset_stats();
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    fn boxed_clone(&self) -> Box<dyn ErasedMatcher> {
        Box::new(Erased {
            matcher: self.matcher.clone(),
            db: self.db.clone(),
            rng: self.rng.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_knobs_are_rejected() {
        assert_eq!(
            MatcherConfig::new(Backend::Ciphermatch)
                .threads(0)
                .build()
                .err(),
            Some(MatchError::InvalidConfig("threads must be positive"))
        );
        assert_eq!(
            MatcherConfig::new(Backend::Yasuda)
                .insecure_test()
                .window(0)
                .build()
                .err(),
            Some(MatchError::InvalidConfig("window must be positive"))
        );
        // The test ring has n = 256: a 100k-bit window cannot fit.
        assert!(matches!(
            MatcherConfig::new(Backend::Batched)
                .insecure_test()
                .window(100_000)
                .build()
                .err(),
            Some(MatchError::InvalidConfig(_))
        ));
    }

    #[test]
    fn searching_before_loading_is_a_typed_error() {
        let mut m = MatcherConfig::new(Backend::Plain).build().unwrap();
        assert_eq!(
            m.find_all(&BitString::from_ascii("x")).err(),
            Some(MatchError::NoDatabase)
        );
    }

    #[test]
    fn empty_queries_are_a_typed_error_on_every_backend() {
        for backend in Backend::ALL {
            let mut m = MatcherConfig::new(backend)
                .insecure_test()
                .window(8)
                .build()
                .unwrap();
            m.load_database(&BitString::from_ascii("ab")).unwrap();
            assert_eq!(
                m.find_all(&BitString::new()).err(),
                Some(MatchError::EmptyQuery),
                "backend {backend}"
            );
        }
    }

    #[test]
    fn cloned_workers_search_independently() {
        let mut m = MatcherConfig::new(Backend::Ciphermatch)
            .insecure_test()
            .seed(3)
            .build()
            .unwrap();
        let data = BitString::from_ascii("clone me and search");
        m.load_database(&data).unwrap();
        let mut w = m.boxed_clone();
        w.reseed(99);
        let q = BitString::from_ascii("search");
        assert_eq!(m.find_all(&q).unwrap(), data.find_all(&q));
        assert_eq!(w.find_all(&q).unwrap(), data.find_all(&q));
    }
}
