//! Dynamic backend selection: the [`Backend`] enum, the [`MatcherConfig`]
//! builder, and the object-safe [`ErasedMatcher`] wrapper that lets
//! heterogeneous matchers live in one registry (`Vec<Box<dyn
//! ErasedMatcher>>`) or behind a [`crate::MatchSession`].

use std::sync::Arc;

use cm_bfv::BfvParams;
use cm_tfhe::TfheParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::api::backends::{
    BatchedMatcher, BooleanMatcher, CiphermatchMatcher, PlainMatcher, YasudaMatcher,
};
use crate::api::{MatchError, MatchStats, SecureMatcher};
use crate::bits::BitString;

/// The implemented secure-matching approaches (the rows of Table 1 that
/// this repository reproduces, plus the unencrypted reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// CM-SW: dense packing + `Hom-Add`-only search (this paper).
    Ciphermatch,
    /// Yasuda et al. \[27\]: Hamming distance, 2 Hom-Mul + 3 Hom-Add per
    /// block, fixed query window.
    Yasuda,
    /// Kim \[34\] / Bonte \[29\]-style SIMD batching: rotations +
    /// squarings over slots, bounded query window.
    Batched,
    /// Aziz \[17\] / Pradel \[33\]-style Boolean TFHE: per-bit LWE,
    /// `2k - 1` bootstrapped gates per window.
    Boolean,
    /// The unencrypted word-packed reference.
    Plain,
    /// CM-IFP: the paper's in-flash engine (§4.3). Constructed by
    /// `cm_server::IfpMatcher` (it needs an SSD device), not by
    /// [`MatcherConfig::build`] — `cm_core` deliberately does not depend
    /// on the SSD crate.
    Ifp,
}

impl Backend {
    /// Every backend [`MatcherConfig::build`] can construct in-process, in
    /// the paper's comparison order. [`Backend::Ifp`] is excluded: the
    /// in-flash engine is registered by the serving layer (`cm_server`),
    /// which owns the SSD device. Use [`Backend::WIRE`] for the complete
    /// listing a CLI or wire endpoint should advertise.
    pub const ALL: [Backend; 5] = [
        Backend::Ciphermatch,
        Backend::Yasuda,
        Backend::Batched,
        Backend::Boolean,
        Backend::Plain,
    ];

    /// Every implemented backend including [`Backend::Ifp`] — the listing
    /// CLI flags and wire `ListBackends` responses should use.
    pub const WIRE: [Backend; 6] = [
        Backend::Ciphermatch,
        Backend::Yasuda,
        Backend::Batched,
        Backend::Boolean,
        Backend::Plain,
        Backend::Ifp,
    ];

    /// A short stable identifier (usable in CLI arguments and bench IDs).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Ciphermatch => "ciphermatch",
            Backend::Yasuda => "yasuda",
            Backend::Batched => "batched",
            Backend::Boolean => "boolean",
            Backend::Plain => "plain",
            Backend::Ifp => "ifp",
        }
    }

    /// Parses the identifiers produced by [`Backend::name`]
    /// (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::UnknownBackend`] for any other string.
    pub fn parse(name: &str) -> Result<Backend, MatchError> {
        let lower = name.to_ascii_lowercase();
        Backend::WIRE
            .into_iter()
            .find(|b| b.name() == lower)
            .ok_or_else(|| MatchError::UnknownBackend(name.to_string()))
    }
}

impl std::str::FromStr for Backend {
    type Err = MatchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Backend::parse(s)
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder that selects and constructs a backend dynamically.
///
/// ```
/// use cm_core::{Backend, BitString, MatcherConfig};
///
/// let mut matcher = MatcherConfig::new(Backend::Ciphermatch)
///     .insecure_test()
///     .seed(7)
///     .build()
///     .unwrap();
/// matcher
///     .load_database(&BitString::from_ascii("abcabc"))
///     .unwrap();
/// let hits = matcher.find_all(&BitString::from_ascii("bc")).unwrap();
/// assert_eq!(hits, vec![8, 32]);
/// ```
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    backend: Backend,
    seed: u64,
    window: usize,
    threads: usize,
    insecure: bool,
    bfv_params: Option<BfvParams>,
    tfhe_params: Option<TfheParams>,
}

impl MatcherConfig {
    /// Starts a configuration for `backend` with the defaults: seed 0,
    /// a 32-bit query window, one thread, and the paper's parameter sets.
    pub fn new(backend: Backend) -> Self {
        Self {
            backend,
            seed: 0,
            window: 32,
            threads: 1,
            insecure: false,
            bfv_params: None,
            tfhe_params: None,
        }
    }

    /// Seeds key generation and query encryption (determinism for tests
    /// and reproducible benchmarks).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fixed/maximum query length in bits for the window-bound backends:
    /// Yasuda requires queries of *exactly* this length, Batched accepts
    /// *up to* this length. Ignored by the flexible-query backends.
    pub fn window(mut self, bits: usize) -> Self {
        self.window = bits;
        self
    }

    /// Number of scoped worker threads used for one search when the
    /// matcher is built directly via [`Self::build`] (CM-SW's parallel
    /// `Hom-Add` sweep, Boolean window fan-out).
    /// [`crate::MatchSession::new`] instead spends this same budget on
    /// per-query fan-out — its workers search serially — so the total
    /// number of concurrent search threads is always bounded by this one
    /// value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Switches to the small, fast, **insecure** test parameter sets —
    /// for unit tests and CI only.
    pub fn insecure_test(mut self) -> Self {
        self.insecure = true;
        self
    }

    /// Overrides the BFV parameter set (Ciphermatch/Yasuda/Batched).
    pub fn bfv_params(mut self, params: BfvParams) -> Self {
        self.bfv_params = Some(params);
        self
    }

    /// Overrides the TFHE parameter set (Boolean).
    pub fn tfhe_params(mut self, params: TfheParams) -> Self {
        self.tfhe_params = Some(params);
        self
    }

    /// The selected backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The configured seed.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The configured per-search thread count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The configured query window in bits (see [`Self::window`]).
    pub fn window_bits(&self) -> usize {
        self.window
    }

    /// Whether [`Self::insecure_test`] parameter sets are selected —
    /// needed to re-create an identical matcher from a wire-transported
    /// description of this configuration.
    pub fn is_insecure_test(&self) -> bool {
        self.insecure
    }

    /// Generates keys and constructs the configured backend behind the
    /// object-safe [`ErasedMatcher`] interface.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::InvalidConfig`] when a knob is out of range
    /// for the selected backend (zero threads, zero window, window larger
    /// than the ring/slot capacity).
    pub fn build(&self) -> Result<Box<dyn ErasedMatcher>, MatchError> {
        if self.threads == 0 {
            return Err(MatchError::InvalidConfig("threads must be positive"));
        }
        if self.window == 0 {
            return Err(MatchError::InvalidConfig("window must be positive"));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let bfv = |default: fn() -> BfvParams, test: fn() -> BfvParams| {
            self.bfv_params
                .clone()
                .unwrap_or_else(if self.insecure { test } else { default })
        };
        Ok(match self.backend {
            Backend::Ciphermatch => erase(
                CiphermatchMatcher::new(
                    bfv(BfvParams::ciphermatch_1024, BfvParams::insecure_test_add),
                    self.threads,
                    &mut rng,
                )?,
                self.seed,
            ),
            Backend::Yasuda => erase(
                YasudaMatcher::new(
                    bfv(BfvParams::arithmetic_2048, BfvParams::insecure_test_mul),
                    self.window,
                    &mut rng,
                )?,
                self.seed,
            ),
            Backend::Batched => erase(
                BatchedMatcher::new(
                    bfv(BfvParams::batching_1024, BfvParams::insecure_test_batch),
                    self.window,
                    &mut rng,
                )?,
                self.seed,
            ),
            Backend::Boolean => {
                let params = self.tfhe_params.clone().unwrap_or_else(if self.insecure {
                    TfheParams::fast_insecure_test
                } else {
                    TfheParams::boolean_default
                });
                erase(
                    BooleanMatcher::new(params, self.threads, &mut rng)?,
                    self.seed,
                )
            }
            Backend::Plain => erase(PlainMatcher::new(), self.seed),
            Backend::Ifp => {
                return Err(MatchError::InvalidConfig(
                    "the ifp backend needs an SSD device; build it via cm_server::IfpMatcher",
                ))
            }
        })
    }
}

/// The object-safe face of a [`SecureMatcher`]: database and query types
/// erased, randomness owned, so heterogeneous backends can share a
/// registry or a [`crate::MatchSession`].
pub trait ErasedMatcher: Send {
    /// Which backend this matcher is.
    fn backend(&self) -> Backend;

    /// Encrypts `data` with this matcher's keys and stores it as *the*
    /// database subsequent [`Self::find_all`] calls search.
    fn load_database(&mut self, data: &BitString) -> Result<(), MatchError>;

    /// True once a database has been loaded.
    fn has_database(&self) -> bool;

    /// Encrypted footprint in bytes of the loaded database (Fig. 2a's
    /// y-axis), if one is loaded.
    fn database_bytes(&self) -> Option<u64>;

    /// Prepares (encrypts) `query` and searches the loaded database,
    /// returning the matching bit offsets.
    fn find_all(&mut self, query: &BitString) -> Result<Vec<usize>, MatchError>;

    /// Searches the loaded database with a query that is *already
    /// encrypted* in the backend's native wire format (the serving path:
    /// the key-owning client encrypted the query remotely and shipped the
    /// bytes). Backends without a native wire format return
    /// [`MatchError::WireQueryUnsupported`].
    fn find_all_wire(&mut self, encoded_query: &[u8]) -> Result<Vec<usize>, MatchError> {
        let _ = encoded_query;
        Err(MatchError::WireQueryUnsupported(self.backend()))
    }

    /// Serializes the loaded database into the backend's native
    /// wire/storage format — the bytes a key owner uploads with
    /// `Request::LoadDatabase`, and the cold-tier representation of an
    /// evicted tenant. Backends without a serialized-database format
    /// return [`MatchError::WireDatabaseUnsupported`];
    /// [`MatchError::NoDatabase`] if nothing is loaded.
    fn export_database(&self) -> Result<Vec<u8>, MatchError> {
        Err(MatchError::WireDatabaseUnsupported(self.backend()))
    }

    /// Loads a database that is *already encrypted* in the backend's
    /// native wire format (the remote-lifecycle path: the key owner
    /// encrypted the database offline and shipped the bytes). The bytes
    /// are validated against this matcher's parameter set before any
    /// ciphertext can reach the search path. Backends without a
    /// serialized-database format return
    /// [`MatchError::WireDatabaseUnsupported`].
    fn load_database_wire(&mut self, encoded: &[u8]) -> Result<(), MatchError> {
        let _ = encoded;
        Err(MatchError::WireDatabaseUnsupported(self.backend()))
    }

    /// Statistics accumulated since construction or the last reset.
    fn stats(&self) -> MatchStats;

    /// Per-shard statistics, for matchers that split their database across
    /// execution units. Unsharded matchers report one entry equal to
    /// [`Self::stats`]; sharded ones report one entry per shard whose
    /// field-wise sum equals [`Self::stats`].
    fn shard_stats(&self) -> Vec<MatchStats> {
        vec![self.stats()]
    }

    /// An opaque identity token for the loaded database *allocation*
    /// (`None` when no database is loaded or the matcher does not share
    /// its database). Two matchers reporting the same token share one
    /// database in memory — the property the session layer relies on to
    /// fan out workers without deep-copying ciphertexts.
    fn database_fingerprint(&self) -> Option<usize> {
        None
    }

    /// Resets the statistics counters.
    fn reset_stats(&mut self);

    /// Replaces the matcher's query-encryption randomness stream (workers
    /// cloned from one template must not share a stream).
    fn reseed(&mut self, seed: u64);

    /// Clones this matcher — keys, loaded database, statistics — into a
    /// new boxed worker. The loaded database is *shared* (same allocation,
    /// see [`Self::database_fingerprint`]), not deep-copied.
    fn boxed_clone(&self) -> Box<dyn ErasedMatcher>;
}

/// Boxes a [`SecureMatcher`] behind [`ErasedMatcher`].
///
/// The loaded database lives behind an [`Arc`]: [`ErasedMatcher::boxed_clone`]
/// shares the same encrypted-database allocation with every worker instead
/// of deep-copying the ciphertexts (the per-worker clone the ROADMAP
/// flagged), which [`ErasedMatcher::database_fingerprint`] makes testable.
pub fn erase<M>(matcher: M, seed: u64) -> Box<dyn ErasedMatcher>
where
    M: SecureMatcher<Stats = MatchStats> + Clone + Send + 'static,
    M::Database: Send + Sync,
{
    Box::new(Erased {
        matcher,
        db: None,
        rng: StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
    })
}

/// The concrete adapter behind [`erase`].
struct Erased<M: SecureMatcher> {
    matcher: M,
    db: Option<Arc<M::Database>>,
    rng: StdRng,
}

impl<M> ErasedMatcher for Erased<M>
where
    M: SecureMatcher<Stats = MatchStats> + Clone + Send + 'static,
    M::Database: Send + Sync,
{
    fn backend(&self) -> Backend {
        self.matcher.backend()
    }

    fn load_database(&mut self, data: &BitString) -> Result<(), MatchError> {
        let db = self.matcher.encrypt_database(data, &mut self.rng)?;
        self.db = Some(Arc::new(db));
        Ok(())
    }

    fn has_database(&self) -> bool {
        self.db.is_some()
    }

    fn database_bytes(&self) -> Option<u64> {
        self.db.as_ref().map(|db| self.matcher.database_bytes(db))
    }

    fn find_all(&mut self, query: &BitString) -> Result<Vec<usize>, MatchError> {
        if self.db.is_none() {
            return Err(MatchError::NoDatabase);
        }
        let q = self.matcher.prepare_query(query, &mut self.rng)?;
        let db = self.db.clone().ok_or(MatchError::NoDatabase)?;
        self.matcher.find_all(&db, &q, &mut self.rng)
    }

    fn find_all_wire(&mut self, encoded_query: &[u8]) -> Result<Vec<usize>, MatchError> {
        let q = self.matcher.decode_query(encoded_query)?;
        let db = self.db.clone().ok_or(MatchError::NoDatabase)?;
        self.matcher.find_all(&db, &q, &mut self.rng)
    }

    fn export_database(&self) -> Result<Vec<u8>, MatchError> {
        let db = self.db.as_ref().ok_or(MatchError::NoDatabase)?;
        self.matcher.encode_database(db)
    }

    fn load_database_wire(&mut self, encoded: &[u8]) -> Result<(), MatchError> {
        let db = self.matcher.decode_database(encoded)?;
        self.db = Some(Arc::new(db));
        Ok(())
    }

    fn database_fingerprint(&self) -> Option<usize> {
        self.db.as_ref().map(|db| Arc::as_ptr(db) as usize)
    }

    fn stats(&self) -> MatchStats {
        self.matcher.stats()
    }

    fn reset_stats(&mut self) {
        self.matcher.reset_stats();
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    fn boxed_clone(&self) -> Box<dyn ErasedMatcher> {
        Box::new(Erased {
            matcher: self.matcher.clone(),
            // Clones the Arc, not the ciphertexts: every worker shares one
            // encrypted-database allocation.
            db: self.db.clone(),
            rng: self.rng.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_knobs_are_rejected() {
        assert_eq!(
            MatcherConfig::new(Backend::Ciphermatch)
                .threads(0)
                .build()
                .err(),
            Some(MatchError::InvalidConfig("threads must be positive"))
        );
        assert_eq!(
            MatcherConfig::new(Backend::Yasuda)
                .insecure_test()
                .window(0)
                .build()
                .err(),
            Some(MatchError::InvalidConfig("window must be positive"))
        );
        // The test ring has n = 256: a 100k-bit window cannot fit.
        assert!(matches!(
            MatcherConfig::new(Backend::Batched)
                .insecure_test()
                .window(100_000)
                .build()
                .err(),
            Some(MatchError::InvalidConfig(_))
        ));
    }

    #[test]
    fn searching_before_loading_is_a_typed_error() {
        let mut m = MatcherConfig::new(Backend::Plain).build().unwrap();
        assert_eq!(
            m.find_all(&BitString::from_ascii("x")).err(),
            Some(MatchError::NoDatabase)
        );
    }

    #[test]
    fn empty_queries_are_a_typed_error_on_every_backend() {
        for backend in Backend::ALL {
            let mut m = MatcherConfig::new(backend)
                .insecure_test()
                .window(8)
                .build()
                .unwrap();
            m.load_database(&BitString::from_ascii("ab")).unwrap();
            assert_eq!(
                m.find_all(&BitString::new()).err(),
                Some(MatchError::EmptyQuery),
                "backend {backend}"
            );
        }
    }

    #[test]
    fn backend_names_round_trip_including_ifp() {
        for backend in Backend::WIRE {
            assert_eq!(Backend::parse(backend.name()), Ok(backend));
            assert_eq!(backend.name().parse::<Backend>(), Ok(backend));
            assert_eq!(
                Backend::parse(&backend.name().to_ascii_uppercase()),
                Ok(backend)
            );
        }
        assert!(Backend::WIRE.contains(&Backend::Ifp));
        assert!(!Backend::ALL.contains(&Backend::Ifp));
        assert_eq!(
            Backend::parse("not-a-backend"),
            Err(MatchError::UnknownBackend("not-a-backend".to_string()))
        );
    }

    #[test]
    fn ifp_backend_is_not_buildable_in_process() {
        assert!(matches!(
            MatcherConfig::new(Backend::Ifp).insecure_test().build(),
            Err(MatchError::InvalidConfig(_))
        ));
    }

    #[test]
    fn cloned_workers_share_one_database_allocation() {
        // The ROADMAP-flagged inefficiency: session workers used to deep-
        // copy the whole encrypted database. The fingerprint (allocation
        // address) proves a clone shares the original's ciphertexts.
        let mut m = MatcherConfig::new(Backend::Ciphermatch)
            .insecure_test()
            .build()
            .unwrap();
        assert_eq!(m.database_fingerprint(), None);
        m.load_database(&BitString::from_ascii("shared, not copied"))
            .unwrap();
        let original = m.database_fingerprint().expect("database loaded");
        let worker = m.boxed_clone();
        assert_eq!(worker.database_fingerprint(), Some(original));
    }

    #[test]
    fn wire_queries_reject_backends_without_a_format() {
        let mut m = MatcherConfig::new(Backend::Plain).build().unwrap();
        m.load_database(&BitString::from_ascii("plain data"))
            .unwrap();
        assert_eq!(
            m.find_all_wire(&[1, 2, 3]).err(),
            Some(MatchError::WireQueryUnsupported(Backend::Plain))
        );
    }

    #[test]
    fn ciphermatch_accepts_its_own_wire_queries() {
        use crate::matchers::ciphermatch::CiphermatchEngine;
        use cm_bfv::{BfvContext, BfvParams, Encryptor, KeyGenerator};

        // The server-side matcher owns the keys; a remote client encrypts
        // under the same public key and ships the encoded query.
        let mut m = MatcherConfig::new(Backend::Ciphermatch)
            .insecure_test()
            .seed(11)
            .build()
            .unwrap();
        let data = BitString::from_ascii("wire queries reach the same engine");
        m.load_database(&data).unwrap();

        // A self-contained client with its own context: the decoded query
        // must be *validated*, then searched. We reuse the matcher's own
        // parameter set via a fresh matcher sharing the seed so the key
        // material matches — here we instead exercise the full decode
        // path through a structurally valid query built client-side.
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(7);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        let enc = Encryptor::new(&ctx, pk);
        let engine = CiphermatchEngine::new(&ctx);
        let q_bits = 64 - ctx.params().q.leading_zeros();
        let pattern = BitString::from_ascii("engine");
        let encoded = engine
            .prepare_query(&enc, &pattern, &mut rng)
            .encode(q_bits);

        // Encrypted under a *different* key pair the decode path still
        // accepts the bytes (they are well-formed); the indices are then
        // garbage-free but meaningless, so we only assert it does not
        // error or panic. The true end-to-end equality lives in the
        // cm_server tests where client and tenant share keys.
        let _ = m.find_all_wire(&encoded).unwrap();

        // Truncations and garbage must surface as typed errors.
        for cut in [0usize, 3, 9, encoded.len() - 1] {
            assert!(matches!(
                m.find_all_wire(&encoded[..cut]).unwrap_err(),
                MatchError::Decode(_)
            ));
        }
    }

    #[test]
    fn exported_databases_reload_through_the_wire_path() {
        // The remote-lifecycle primitive: a key owner encrypts locally,
        // exports the bytes, and a matcher rebuilt from the same seed
        // loads them *without re-encrypting* — searches agree exactly.
        for backend in [Backend::Ciphermatch, Backend::Plain] {
            let config = MatcherConfig::new(backend).insecure_test().seed(41);
            let mut owner = config.build().unwrap();
            assert_eq!(
                owner.export_database().err(),
                Some(MatchError::NoDatabase),
                "{backend}: nothing to export before load"
            );
            let data = BitString::from_ascii("export, ship, reload, search");
            owner.load_database(&data).unwrap();
            let encoded = owner.export_database().unwrap();

            let mut host = config.build().unwrap();
            host.load_database_wire(&encoded).unwrap();
            assert!(host.has_database());
            let q = BitString::from_ascii("reload");
            assert_eq!(host.find_all(&q).unwrap(), data.find_all(&q), "{backend}");
            // Re-export round-trips byte-exact: the registry's accounting
            // charge is stable across reloads.
            assert_eq!(host.export_database().unwrap(), encoded, "{backend}");

            // Hostile bytes are typed errors, never panics.
            for cut in [0usize, 5, encoded.len().saturating_sub(3)] {
                assert!(matches!(
                    host.load_database_wire(&encoded[..cut]).unwrap_err(),
                    MatchError::Decode(_)
                ));
            }
            let mut lying = encoded.clone();
            lying[..8].copy_from_slice(&u64::MAX.to_le_bytes());
            assert!(host.load_database_wire(&lying).is_err());
        }

        // Backends without a serialized-database format say so, typed.
        let mut m = MatcherConfig::new(Backend::Boolean)
            .insecure_test()
            .build()
            .unwrap();
        m.load_database(&BitString::from_ascii("ab")).unwrap();
        assert_eq!(
            m.export_database().err(),
            Some(MatchError::WireDatabaseUnsupported(Backend::Boolean))
        );
        assert_eq!(
            m.load_database_wire(&[1, 2, 3]).err(),
            Some(MatchError::WireDatabaseUnsupported(Backend::Boolean))
        );
    }

    #[test]
    fn cloned_workers_search_independently() {
        let mut m = MatcherConfig::new(Backend::Ciphermatch)
            .insecure_test()
            .seed(3)
            .build()
            .unwrap();
        let data = BitString::from_ascii("clone me and search");
        m.load_database(&data).unwrap();
        let mut w = m.boxed_clone();
        w.reseed(99);
        let q = BitString::from_ascii("search");
        assert_eq!(m.find_all(&q).unwrap(), data.find_all(&q));
        assert_eq!(w.find_all(&q).unwrap(), data.find_all(&q));
    }
}
