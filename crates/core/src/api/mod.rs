//! The unified backend API: one trait over every secure-matching engine.
//!
//! The paper's evaluation is a head-to-head comparison of CM-SW against
//! three secure-matching baselines; this module gives all of them (plus
//! the unencrypted reference) one surface:
//!
//! * [`SecureMatcher`] — the backend-agnostic trait: encrypt a database,
//!   prepare a query, find all matching bit offsets, report unified
//!   [`MatchStats`];
//! * the key-owning adapters in [`backends`] ([`CiphermatchMatcher`],
//!   [`YasudaMatcher`], [`BatchedMatcher`], [`BooleanMatcher`],
//!   [`PlainMatcher`]) implementing it for every engine;
//! * [`Backend`] + [`MatcherConfig`] — dynamic selection and
//!   construction, yielding a `Box<dyn `[`ErasedMatcher`]`>` whose
//!   database/query types are erased so heterogeneous backends fit one
//!   registry;
//! * [`MatchError`] — the typed error surface of the protocol path (no
//!   panics on malformed input or misconfiguration);
//! * [`MatchStats`] — one statistics shape for every backend.
//!
//! The multi-query service layer on top of this trait is
//! [`crate::MatchSession`] in the protocol module.
//!
//! ```
//! use cm_core::{Backend, BitString, MatcherConfig};
//!
//! // The same four lines drive any backend.
//! for backend in [Backend::Ciphermatch, Backend::Plain] {
//!     let mut m = MatcherConfig::new(backend).insecure_test().build().unwrap();
//!     m.load_database(&BitString::from_ascii("needle in haystack")).unwrap();
//!     let hits = m.find_all(&BitString::from_ascii("needle")).unwrap();
//!     assert_eq!(hits, vec![0]);
//! }
//! ```

pub mod backends;
mod config;
mod error;
mod stats;

pub use backends::{
    BatchedMatcher, BooleanMatcher, CiphermatchMatcher, PlainMatcher, YasudaMatcher,
};
pub use config::{erase, Backend, ErasedMatcher, MatcherConfig};
pub use error::MatchError;
pub use stats::{MatchStats, StatsAccumulator};

use rand::Rng;

use crate::bits::BitString;

/// A secure string-matching backend: database encryption, query
/// preparation, and exact search, with unified statistics.
///
/// Implementations own whatever key material their protocol role needs,
/// so the trait surface is key-free; randomness is threaded explicitly so
/// callers stay deterministic under a fixed seed. All inputs are bit
/// strings and all results are **bit offsets** into the database,
/// whatever the backend's native alphabet.
///
/// The trait is not object-safe (the methods are generic over the RNG);
/// [`ErasedMatcher`] is the object-safe wrapper for heterogeneous
/// registries — see [`erase`] and [`MatcherConfig::build`].
pub trait SecureMatcher {
    /// The backend's encrypted-database representation.
    type Database;
    /// The backend's prepared-query representation.
    type Query;
    /// The statistics type; unified to [`MatchStats`] by every
    /// implementation in this crate.
    type Stats: Into<MatchStats>;

    /// Which [`Backend`] this matcher implements.
    fn backend(&self) -> Backend;

    /// Packs and encrypts `data` (client side, done once per database).
    fn encrypt_database<R: Rng + ?Sized>(
        &mut self,
        data: &BitString,
        rng: &mut R,
    ) -> Result<Self::Database, MatchError>;

    /// Prepares (encrypts) one query (client side, per query).
    fn prepare_query<R: Rng + ?Sized>(
        &mut self,
        query: &BitString,
        rng: &mut R,
    ) -> Result<Self::Query, MatchError>;

    /// Searches `db` for `query`, returning all matching bit offsets in
    /// ascending order.
    fn find_all<R: Rng + ?Sized>(
        &mut self,
        db: &Self::Database,
        query: &Self::Query,
        rng: &mut R,
    ) -> Result<Vec<usize>, MatchError>;

    /// Decodes a query that arrived in this backend's native wire format
    /// (already encrypted by the remote key owner). Backends without a
    /// wire format — all but the CIPHERMATCH family — return
    /// [`MatchError::WireQueryUnsupported`].
    fn decode_query(&self, encoded: &[u8]) -> Result<Self::Query, MatchError> {
        let _ = encoded;
        Err(MatchError::WireQueryUnsupported(self.backend()))
    }

    /// Serializes `db` into this backend's native wire/storage format —
    /// what a key owner ships to a serving host with
    /// `Request::LoadDatabase`, and what the host's cold tier stores for
    /// an evicted tenant. Backends without a serialized-database format
    /// return [`MatchError::WireDatabaseUnsupported`].
    fn encode_database(&self, db: &Self::Database) -> Result<Vec<u8>, MatchError> {
        let _ = db;
        Err(MatchError::WireDatabaseUnsupported(self.backend()))
    }

    /// Decodes **and validates** a database that arrived in this backend's
    /// native wire format: hostile bytes must surface as a typed error
    /// before any ciphertext can reach the search path. Backends without a
    /// serialized-database format return
    /// [`MatchError::WireDatabaseUnsupported`].
    fn decode_database(&self, encoded: &[u8]) -> Result<Self::Database, MatchError> {
        let _ = encoded;
        Err(MatchError::WireDatabaseUnsupported(self.backend()))
    }

    /// Encrypted footprint of `db` in bytes (Fig. 2a's y-axis).
    fn database_bytes(&self, db: &Self::Database) -> u64;

    /// Statistics accumulated since construction or the last reset.
    fn stats(&self) -> Self::Stats;

    /// Resets the statistics counters.
    fn reset_stats(&mut self);
}
