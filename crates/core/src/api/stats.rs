//! The unified execution-statistics type shared by every backend.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Homomorphic-operation counters and wall-time totals accumulated by a
/// matcher, in one shape for every backend.
///
/// The counters mirror the cost axes the paper compares the approaches on
/// (Table 1, Fig. 2): CM-SW spends only `hom_adds`, Yasuda \[27\] is
/// dominated by `hom_muls`, the SIMD-batched baseline \[34, 29\] adds
/// `rotations`, and the Boolean baseline \[17, 33\] pays `bootstraps`.
/// Fields irrelevant to a backend simply stay zero, which is itself the
/// comparison the paper draws.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Homomorphic additions (ciphertext or plaintext operand).
    pub hom_adds: u64,
    /// Homomorphic ciphertext-ciphertext multiplications (squarings
    /// included).
    pub hom_muls: u64,
    /// Homomorphic slot rotations (Galois automorphisms).
    pub rotations: u64,
    /// Bootstrapped Boolean gates.
    pub bootstraps: u64,
    /// Encrypted bytes moved between client and server (queries uploaded
    /// plus results returned), where the backend tracks it.
    pub bytes_moved: u64,
    /// Flash program/erase cycles consumed by in-flash search (CM-IFP).
    /// The paper's latch-only `bop_add` keeps this at zero; any non-zero
    /// value means a search wore the flash array.
    pub flash_wear: u64,
    /// Wall time spent in additions.
    pub add_time: Duration,
    /// Wall time spent in multiplications (and rotations, which share the
    /// key-switching machinery).
    pub mul_time: Duration,
}

impl MatchStats {
    /// Total homomorphic operations of any kind.
    pub fn total_ops(&self) -> u64 {
        self.hom_adds + self.hom_muls + self.rotations + self.bootstraps
    }

    /// Fraction of homomorphic wall time spent in multiplication — the
    /// quantity Fig. 2c reports as 98.2% for the arithmetic baseline.
    pub fn mult_fraction(&self) -> f64 {
        let m = self.mul_time.as_secs_f64();
        let a = self.add_time.as_secs_f64();
        if m + a == 0.0 {
            0.0
        } else {
            m / (m + a)
        }
    }

    /// Accumulates `other` into `self` field-wise (used when aggregating
    /// per-worker statistics into a session total).
    pub fn merge(&mut self, other: &MatchStats) {
        self.hom_adds += other.hom_adds;
        self.hom_muls += other.hom_muls;
        self.rotations += other.rotations;
        self.bootstraps += other.bootstraps;
        self.bytes_moved += other.bytes_moved;
        self.flash_wear += other.flash_wear;
        self.add_time += other.add_time;
        self.mul_time += other.mul_time;
    }
}

impl std::fmt::Display for MatchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "adds={} muls={} rots={} bootstraps={}",
            self.hom_adds, self.hom_muls, self.rotations, self.bootstraps
        )
    }
}

/// Lock-free lifetime totals: per-field atomic accumulation of per-query
/// [`MatchStats`] plus a query counter.
///
/// This replaces the racy pattern of reset-then-read deltas on one shared
/// matcher guarded by a mutex: callers take exact per-query stats from an
/// executor outcome ([`crate::exec::ExecOutcome`]) and [`Self::record`]
/// them here. A [`Self::snapshot`] taken while queries are in flight is
/// field-wise consistent with *some* interleaving of whole-query records
/// only after the writers quiesce; individual fields are always exact
/// sums of recorded values.
#[derive(Debug, Default)]
pub struct StatsAccumulator {
    hom_adds: AtomicU64,
    hom_muls: AtomicU64,
    rotations: AtomicU64,
    bootstraps: AtomicU64,
    bytes_moved: AtomicU64,
    flash_wear: AtomicU64,
    add_nanos: AtomicU64,
    mul_nanos: AtomicU64,
    queries: AtomicU64,
}

impl StatsAccumulator {
    /// An all-zero accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one query's exact stats into the totals and counts the query.
    pub fn record(&self, stats: &MatchStats) {
        self.charge(stats);
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds lifecycle costs into the totals WITHOUT counting a query —
    /// demotion writes and re-materialization reads move bytes and wear
    /// flash on the tenant's behalf, but no query was answered.
    pub fn charge(&self, stats: &MatchStats) {
        self.hom_adds.fetch_add(stats.hom_adds, Ordering::Relaxed);
        self.hom_muls.fetch_add(stats.hom_muls, Ordering::Relaxed);
        self.rotations.fetch_add(stats.rotations, Ordering::Relaxed);
        self.bootstraps
            .fetch_add(stats.bootstraps, Ordering::Relaxed);
        self.bytes_moved
            .fetch_add(stats.bytes_moved, Ordering::Relaxed);
        self.flash_wear
            .fetch_add(stats.flash_wear, Ordering::Relaxed);
        self.add_nanos
            .fetch_add(stats.add_time.as_nanos() as u64, Ordering::Relaxed);
        self.mul_nanos
            .fetch_add(stats.mul_time.as_nanos() as u64, Ordering::Relaxed);
    }

    /// The accumulated totals and the number of queries recorded.
    pub fn snapshot(&self) -> (MatchStats, u64) {
        let stats = MatchStats {
            hom_adds: self.hom_adds.load(Ordering::Relaxed),
            hom_muls: self.hom_muls.load(Ordering::Relaxed),
            rotations: self.rotations.load(Ordering::Relaxed),
            bootstraps: self.bootstraps.load(Ordering::Relaxed),
            bytes_moved: self.bytes_moved.load(Ordering::Relaxed),
            flash_wear: self.flash_wear.load(Ordering::Relaxed),
            add_time: Duration::from_nanos(self.add_nanos.load(Ordering::Relaxed)),
            mul_time: Duration::from_nanos(self.mul_nanos.load(Ordering::Relaxed)),
        };
        (stats, self.queries.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_fieldwise() {
        let mut a = MatchStats {
            hom_adds: 1,
            hom_muls: 2,
            rotations: 3,
            bootstraps: 4,
            bytes_moved: 5,
            flash_wear: 6,
            add_time: Duration::from_millis(10),
            mul_time: Duration::from_millis(20),
        };
        a.merge(&a.clone());
        assert_eq!(a.hom_adds, 2);
        assert_eq!(a.hom_muls, 4);
        assert_eq!(a.rotations, 6);
        assert_eq!(a.bootstraps, 8);
        assert_eq!(a.bytes_moved, 10);
        assert_eq!(a.flash_wear, 12);
        assert_eq!(a.add_time, Duration::from_millis(20));
        assert_eq!(a.total_ops(), 20);
    }

    #[test]
    fn accumulator_totals_equal_the_sum_of_recorded_stats() {
        let acc = StatsAccumulator::new();
        let a = MatchStats {
            hom_adds: 3,
            bytes_moved: 100,
            add_time: Duration::from_millis(5),
            ..MatchStats::default()
        };
        let b = MatchStats {
            hom_adds: 7,
            flash_wear: 1,
            mul_time: Duration::from_millis(2),
            ..MatchStats::default()
        };
        acc.record(&a);
        acc.record(&b);
        let (totals, queries) = acc.snapshot();
        let mut expected = a;
        expected.merge(&b);
        assert_eq!(totals, expected);
        assert_eq!(queries, 2);
    }

    #[test]
    fn charge_accumulates_without_counting_a_query() {
        let acc = StatsAccumulator::new();
        acc.charge(&MatchStats {
            bytes_moved: 64,
            flash_wear: 2,
            ..MatchStats::default()
        });
        acc.record(&MatchStats {
            hom_adds: 5,
            ..MatchStats::default()
        });
        let (totals, queries) = acc.snapshot();
        assert_eq!(queries, 1, "charge must not count as a query");
        assert_eq!(totals.bytes_moved, 64);
        assert_eq!(totals.flash_wear, 2);
        assert_eq!(totals.hom_adds, 5);
    }

    #[test]
    fn mult_fraction_handles_zero_time() {
        assert_eq!(MatchStats::default().mult_fraction(), 0.0);
        let s = MatchStats {
            add_time: Duration::from_millis(25),
            mul_time: Duration::from_millis(75),
            ..MatchStats::default()
        };
        assert!((s.mult_fraction() - 0.75).abs() < 1e-12);
    }
}
