//! The client–server protocol of Algorithm 1 / Figure 6.
//!
//! Six steps: ① the client packs + encrypts the query variants and the
//! match check material, ② sends them to the server, ③–④ the server runs
//! `Hom-Add` against the stored encrypted database, ⑤ index generation
//! locates matches, ⑥ the (encrypted) index list returns to the client.
//!
//! Index generation requires seeing whether result coefficients equal the
//! match polynomial, which randomized HE ciphertexts do not reveal. The
//! paper implicitly performs this inside the SSD controller; we model that
//! as [`IndexMode::TrustedController`] and also offer the
//! cryptographically conservative [`IndexMode::ClientSide`] where the
//! server returns result ciphertexts for the client to decrypt (the
//! communication-heavy behaviour the paper criticizes in \[27\]).

use cm_bfv::{BfvContext, Decryptor, Encryptor, KeyGenerator, PublicKey, SecretKey};
use rand::Rng;

use crate::bits::BitString;
use crate::matchers::ciphermatch::{
    CiphermatchEngine, EncryptedDatabase, EncryptedQuery, SearchResult,
};

/// Where index generation happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// The paper's model: a trusted unit co-located with the data (the SSD
    /// controller in CM-IFP) checks match-polynomial equality and returns
    /// only the indices.
    TrustedController,
    /// The conservative model: all result ciphertexts travel back and the
    /// client decrypts (scales with database size, like \[27\]).
    ClientSide,
}

/// The client: owns the secret key, prepares queries, reads results.
pub struct Client {
    ctx: BfvContext,
    sk: SecretKey,
    pk: PublicKey,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("params", &self.ctx.params().name)
            .finish()
    }
}

impl Client {
    /// Generates a client with fresh keys.
    pub fn new<R: Rng + ?Sized>(ctx: &BfvContext, rng: &mut R) -> Self {
        let kg = KeyGenerator::new(ctx, rng);
        let sk = kg.secret_key();
        let pk = kg.public_key(rng);
        Self {
            ctx: ctx.clone(),
            sk,
            pk,
        }
    }

    /// Packs and encrypts the database for upload (done once; Algorithm 1
    /// lines 1–3).
    pub fn encrypt_database<R: Rng + ?Sized>(
        &self,
        data: &BitString,
        rng: &mut R,
    ) -> EncryptedDatabase {
        let enc = Encryptor::new(&self.ctx, self.pk.clone());
        CiphermatchEngine::new(&self.ctx).encrypt_database(&enc, data, rng)
    }

    /// Prepares an encrypted query (Algorithm 1 lines 4–9).
    pub fn prepare_query<R: Rng + ?Sized>(&self, query: &BitString, rng: &mut R) -> EncryptedQuery {
        let enc = Encryptor::new(&self.ctx, self.pk.clone());
        CiphermatchEngine::new(&self.ctx).prepare_query(&enc, query, rng)
    }

    /// Decrypts a full search response (ClientSide mode).
    pub fn decrypt_matches(&self, result: &SearchResult) -> Vec<usize> {
        let dec = Decryptor::new(&self.ctx, self.sk.clone());
        CiphermatchEngine::new(&self.ctx).generate_indices(&dec, result)
    }

    /// Hands a decryption capability to a trusted controller (the paper's
    /// implicit trust model for in-storage index generation).
    pub fn delegate_index_generation(&self) -> TrustedIndexGenerator {
        TrustedIndexGenerator {
            ctx: self.ctx.clone(),
            sk: self.sk.clone(),
        }
    }
}

/// The trusted index-generation capability living next to the data
/// (the SSD controller in CM-IFP).
pub struct TrustedIndexGenerator {
    ctx: BfvContext,
    sk: SecretKey,
}

impl std::fmt::Debug for TrustedIndexGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrustedIndexGenerator")
            .field("params", &self.ctx.params().name)
            .finish()
    }
}

impl TrustedIndexGenerator {
    /// Builds the capability directly from a secret key (used when the
    /// key was provisioned to the controller out of band).
    pub fn from_secret(ctx: &BfvContext, sk: SecretKey) -> Self {
        Self {
            ctx: ctx.clone(),
            sk,
        }
    }

    /// Runs index generation on a search result, returning matching bit
    /// offsets.
    pub fn generate(&self, result: &SearchResult) -> Vec<usize> {
        let dec = Decryptor::new(&self.ctx, self.sk.clone());
        CiphermatchEngine::new(&self.ctx).generate_indices(&dec, result)
    }
}

/// The server: stores the encrypted database and runs addition-only
/// searches.
pub struct Server {
    ctx: BfvContext,
    db: EncryptedDatabase,
    engine: CiphermatchEngine,
    index_gen: Option<TrustedIndexGenerator>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("params", &self.ctx.params().name)
            .field("db_polys", &self.db.poly_count())
            .finish()
    }
}

impl Server {
    /// Creates a server holding an uploaded encrypted database.
    pub fn new(ctx: &BfvContext, db: EncryptedDatabase) -> Self {
        Self {
            ctx: ctx.clone(),
            db,
            engine: CiphermatchEngine::new(ctx),
            index_gen: None,
        }
    }

    /// Installs a trusted index-generation capability
    /// ([`IndexMode::TrustedController`]).
    pub fn install_index_generator(&mut self, gen: TrustedIndexGenerator) {
        self.index_gen = Some(gen);
    }

    /// Runs the search, returning raw result ciphertexts
    /// (ClientSide mode; Algorithm 1 lines 10–11).
    pub fn search(&mut self, query: &EncryptedQuery) -> SearchResult {
        self.engine.search(&self.db, query)
    }

    /// Runs the search and generates indices server-side
    /// (TrustedController mode; Algorithm 1 line 12).
    ///
    /// # Panics
    ///
    /// Panics if no trusted index generator was installed.
    pub fn search_indices(&mut self, query: &EncryptedQuery) -> Vec<usize> {
        let result = self.engine.search(&self.db, query);
        self.index_gen
            .as_ref()
            .expect("TrustedController mode requires install_index_generator")
            .generate(&result)
    }

    /// Homomorphic additions executed so far.
    pub fn hom_adds(&self) -> u64 {
        self.engine.stats().hom_adds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_bfv::BfvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn end_to_end_trusted_controller_mode() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(5150);
        let client = Client::new(&ctx, &mut rng);
        let data = BitString::from_ascii("protocol round trip test data");
        let mut server = Server::new(&ctx, client.encrypt_database(&data, &mut rng));
        server.install_index_generator(client.delegate_index_generation());

        let pattern = BitString::from_ascii("round trip");
        let q = client.prepare_query(&pattern, &mut rng);
        let got = server.search_indices(&q);
        assert_eq!(got, data.find_all(&pattern));
        assert!(server.hom_adds() > 0);
    }

    #[test]
    fn end_to_end_client_side_mode() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(5151);
        let client = Client::new(&ctx, &mut rng);
        let data = BitString::from_ascii("client side decryption flow");
        let mut server = Server::new(&ctx, client.encrypt_database(&data, &mut rng));

        let pattern = BitString::from_ascii("side");
        let q = client.prepare_query(&pattern, &mut rng);
        let result = server.search(&q);
        assert_eq!(client.decrypt_matches(&result), data.find_all(&pattern));
    }

    #[test]
    #[should_panic(expected = "TrustedController mode requires")]
    fn trusted_mode_requires_installation() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(5152);
        let client = Client::new(&ctx, &mut rng);
        let data = BitString::from_ascii("x");
        let mut server = Server::new(&ctx, client.encrypt_database(&data, &mut rng));
        let q = client.prepare_query(&BitString::from_ascii("x"), &mut rng);
        let _ = server.search_indices(&q);
    }
}
