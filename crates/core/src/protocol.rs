//! The client–server protocol of Algorithm 1 / Figure 6.
//!
//! Six steps: ① the client packs + encrypts the query variants and the
//! match check material, ② sends them to the server, ③–④ the server runs
//! `Hom-Add` against the stored encrypted database, ⑤ index generation
//! locates matches, ⑥ the (encrypted) index list returns to the client.
//!
//! Index generation requires seeing whether result coefficients equal the
//! match polynomial, which randomized HE ciphertexts do not reveal. The
//! paper implicitly performs this inside the SSD controller; we model that
//! as [`IndexMode::TrustedController`] and also offer the
//! cryptographically conservative [`IndexMode::ClientSide`] where the
//! server returns result ciphertexts for the client to decrypt (the
//! communication-heavy behaviour the paper criticizes in \[27\]).

use cm_bfv::{BfvContext, Decryptor, Encryptor, KeyGenerator, PublicKey, SecretKey};
use rand::Rng;

use crate::api::{Backend, ErasedMatcher, MatchError, MatchStats, MatcherConfig};
use crate::bits::BitString;
use crate::exec::{wait_all, WorkerPool};
use crate::matchers::ciphermatch::{
    CiphermatchEngine, EncryptedDatabase, EncryptedQuery, SearchResult,
};

/// Where index generation happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// The paper's model: a trusted unit co-located with the data (the SSD
    /// controller in CM-IFP) checks match-polynomial equality and returns
    /// only the indices.
    TrustedController,
    /// The conservative model: all result ciphertexts travel back and the
    /// client decrypts (scales with database size, like \[27\]).
    ClientSide,
}

/// The client: owns the secret key, prepares queries, reads results.
pub struct Client {
    ctx: BfvContext,
    sk: SecretKey,
    pk: PublicKey,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("params", &self.ctx.params().name)
            .finish()
    }
}

impl Client {
    /// Generates a client with fresh keys.
    pub fn new<R: Rng + ?Sized>(ctx: &BfvContext, rng: &mut R) -> Self {
        let kg = KeyGenerator::new(ctx, rng);
        let sk = kg.secret_key();
        let pk = kg.public_key(rng);
        Self {
            ctx: ctx.clone(),
            sk,
            pk,
        }
    }

    /// Packs and encrypts the database for upload (done once; Algorithm 1
    /// lines 1–3).
    pub fn encrypt_database<R: Rng + ?Sized>(
        &self,
        data: &BitString,
        rng: &mut R,
    ) -> EncryptedDatabase {
        let enc = Encryptor::new(&self.ctx, self.pk.clone());
        CiphermatchEngine::new(&self.ctx).encrypt_database(&enc, data, rng)
    }

    /// Prepares an encrypted query (Algorithm 1 lines 4–9).
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::EmptyQuery`] for the empty pattern, which has
    /// no well-defined matches.
    pub fn prepare_query<R: Rng + ?Sized>(
        &self,
        query: &BitString,
        rng: &mut R,
    ) -> Result<EncryptedQuery, MatchError> {
        if query.is_empty() {
            return Err(MatchError::EmptyQuery);
        }
        let enc = Encryptor::new(&self.ctx, self.pk.clone());
        Ok(CiphermatchEngine::new(&self.ctx).prepare_query(&enc, query, rng))
    }

    /// Decrypts a full search response (ClientSide mode).
    pub fn decrypt_matches(&self, result: &SearchResult) -> Vec<usize> {
        let dec = Decryptor::new(&self.ctx, self.sk.clone());
        CiphermatchEngine::new(&self.ctx).generate_indices(&dec, result)
    }

    /// Hands a decryption capability to a trusted controller (the paper's
    /// implicit trust model for in-storage index generation).
    pub fn delegate_index_generation(&self) -> TrustedIndexGenerator {
        TrustedIndexGenerator {
            ctx: self.ctx.clone(),
            sk: self.sk.clone(),
        }
    }
}

/// The trusted index-generation capability living next to the data
/// (the SSD controller in CM-IFP). Cloneable so a sharded server can give
/// every shard worker its own copy.
#[derive(Clone)]
pub struct TrustedIndexGenerator {
    ctx: BfvContext,
    sk: SecretKey,
}

impl std::fmt::Debug for TrustedIndexGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrustedIndexGenerator")
            .field("params", &self.ctx.params().name)
            .finish()
    }
}

impl TrustedIndexGenerator {
    /// Builds the capability directly from a secret key (used when the
    /// key was provisioned to the controller out of band).
    pub fn from_secret(ctx: &BfvContext, sk: SecretKey) -> Self {
        Self {
            ctx: ctx.clone(),
            sk,
        }
    }

    /// Runs index generation on a search result, returning matching bit
    /// offsets.
    pub fn generate(&self, result: &SearchResult) -> Vec<usize> {
        let dec = Decryptor::new(&self.ctx, self.sk.clone());
        CiphermatchEngine::new(&self.ctx).generate_indices(&dec, result)
    }
}

/// The server: stores the encrypted database and runs addition-only
/// searches.
pub struct Server {
    ctx: BfvContext,
    db: EncryptedDatabase,
    engine: CiphermatchEngine,
    index_gen: Option<TrustedIndexGenerator>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("params", &self.ctx.params().name)
            .field("db_polys", &self.db.poly_count())
            .finish()
    }
}

impl Server {
    /// Creates a server holding an uploaded encrypted database.
    pub fn new(ctx: &BfvContext, db: EncryptedDatabase) -> Self {
        Self {
            ctx: ctx.clone(),
            db,
            engine: CiphermatchEngine::new(ctx),
            index_gen: None,
        }
    }

    /// Installs a trusted index-generation capability
    /// ([`IndexMode::TrustedController`]).
    pub fn install_index_generator(&mut self, gen: TrustedIndexGenerator) {
        self.index_gen = Some(gen);
    }

    /// Runs the search, returning raw result ciphertexts
    /// (ClientSide mode; Algorithm 1 lines 10–11).
    pub fn search(&mut self, query: &EncryptedQuery) -> SearchResult {
        self.engine.search(&self.db, query)
    }

    /// Runs the search and generates indices server-side
    /// (TrustedController mode; Algorithm 1 line 12).
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::NoIndexGenerator`] if no trusted index
    /// generator was installed.
    pub fn search_indices(&mut self, query: &EncryptedQuery) -> Result<Vec<usize>, MatchError> {
        let result = self.engine.search(&self.db, query);
        let index_gen = self
            .index_gen
            .as_ref()
            .ok_or(MatchError::NoIndexGenerator)?;
        Ok(index_gen.generate(&result))
    }

    /// Homomorphic additions executed so far.
    pub fn hom_adds(&self) -> u64 {
        self.engine.stats().hom_adds
    }
}

/// The result of one [`MatchSession::run_batch`]: per-query outcomes in
/// input order plus the statistics aggregated across all workers.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One result per query, in the order the queries were submitted.
    pub per_query: Vec<Result<Vec<usize>, MatchError>>,
    /// Statistics aggregated over every worker for this batch.
    pub stats: MatchStats,
}

impl BatchReport {
    /// Unwraps the per-query index lists, surfacing the first per-query
    /// error if any query failed.
    pub fn into_indices(self) -> Result<Vec<Vec<usize>>, MatchError> {
        self.per_query.into_iter().collect()
    }
}

/// The multi-query service layer a multi-tenant server would call: owns a
/// backend (keys included) built from a [`MatcherConfig`], accepts
/// batches of queries, fans them out across a session-owned
/// [`WorkerPool`] of long-lived threads (each job a clone of the matcher
/// with its own randomness stream), and returns per-query indices plus
/// aggregated [`MatchStats`] taken from the job outcomes.
///
/// ```
/// use cm_core::{Backend, BitString, MatchSession, MatcherConfig};
///
/// let config = MatcherConfig::new(Backend::Ciphermatch)
///     .insecure_test()
///     .threads(2);
/// let mut session = MatchSession::new(&config).unwrap();
/// session
///     .load_database(&BitString::from_ascii("the needle in the haystack"))
///     .unwrap();
/// let queries = [BitString::from_ascii("the"), BitString::from_ascii("needle")];
/// let report = session.run_batch(&queries).unwrap();
/// assert_eq!(report.per_query.len(), 2);
/// assert_eq!(report.per_query[1].as_ref().unwrap(), &vec![4 * 8]);
/// assert!(report.stats.hom_adds > 0);
/// ```
pub struct MatchSession {
    matcher: Box<dyn ErasedMatcher>,
    pool: WorkerPool,
    seed: u64,
    batches: u64,
    stats: MatchStats,
}

impl std::fmt::Debug for MatchSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchSession")
            .field("backend", &self.matcher.backend())
            .field("threads", &self.pool.worker_count())
            .finish()
    }
}

impl MatchSession {
    /// Builds the configured backend (generating its keys) and a session
    /// around it. The config's thread count becomes the session's
    /// [`WorkerPool`] width — its *batch fan-out*; each worker searches
    /// serially, so the total number of concurrent search threads is
    /// bounded by that one knob rather than multiplying with the
    /// matcher's internal parallelism.
    pub fn new(config: &MatcherConfig) -> Result<Self, MatchError> {
        if config.thread_count() == 0 {
            return Err(MatchError::InvalidConfig("threads must be positive"));
        }
        let worker_config = config.clone().threads(1);
        Ok(Self::from_matcher(
            worker_config.build()?,
            config.thread_count(),
            config.seed_value(),
        ))
    }

    /// Wraps an existing matcher (e.g. one taken from a heterogeneous
    /// registry) in a session whose worker pool has `threads` long-lived
    /// batch workers.
    pub fn from_matcher(matcher: Box<dyn ErasedMatcher>, threads: usize, seed: u64) -> Self {
        Self {
            matcher,
            pool: WorkerPool::new(threads.max(1)).expect("positive worker count"),
            seed,
            batches: 0,
            stats: MatchStats::default(),
        }
    }

    /// Which backend this session serves.
    pub fn backend(&self) -> Backend {
        self.matcher.backend()
    }

    /// Encrypts and stores the database every subsequent query searches.
    pub fn load_database(&mut self, data: &BitString) -> Result<(), MatchError> {
        self.matcher.load_database(data)
    }

    /// Encrypted footprint in bytes of the loaded database, if any.
    pub fn database_bytes(&self) -> Option<u64> {
        self.matcher.database_bytes()
    }

    /// Runs a single query (no fan-out) and folds its cost into the
    /// session statistics.
    pub fn find_all(&mut self, query: &BitString) -> Result<Vec<usize>, MatchError> {
        self.matcher.reset_stats();
        let result = self.matcher.find_all(query);
        self.stats.merge(&self.matcher.stats());
        result
    }

    /// Runs a batch of queries, fanned out as up to
    /// `min(threads, queries.len())` jobs on the session's [`WorkerPool`].
    /// Per-query failures (e.g. a [`MatchError::WindowMismatch`] on one
    /// malformed query) are reported in the [`BatchReport`] without
    /// failing the batch; only a panicked worker or a missing database
    /// fails the whole call.
    pub fn run_batch(&mut self, queries: &[BitString]) -> Result<BatchReport, MatchError> {
        if !self.matcher.has_database() {
            return Err(MatchError::NoDatabase);
        }
        if queries.is_empty() {
            return Ok(BatchReport {
                per_query: Vec::new(),
                stats: MatchStats::default(),
            });
        }
        self.batches += 1;
        let workers = self.pool.worker_count().min(queries.len());
        let chunk_size = queries.len().div_ceil(workers);
        // One clone of the matcher per job, each with a distinct
        // randomness stream and zeroed counters so the per-batch
        // aggregate taken from the job outcomes is exact. Clones share
        // the encrypted database (an Arc), so a job costs key material
        // and engine state only.
        let handles: Vec<_> = queries
            .chunks(chunk_size)
            .enumerate()
            .map(|(w, chunk)| {
                let mut m = self.matcher.boxed_clone();
                m.reseed(self.seed ^ (self.batches << 20) ^ (w as u64 + 1));
                m.reset_stats();
                let chunk = chunk.to_vec();
                self.pool.submit_measured(move || {
                    let results: Vec<_> = chunk.iter().map(|q| m.find_all(q)).collect();
                    (results, m.stats())
                })
            })
            .collect();
        let mut per_query = Vec::with_capacity(queries.len());
        let mut stats = MatchStats::default();
        for outcome in wait_all(handles)? {
            per_query.extend(outcome.result);
            stats.merge(&outcome.stats);
        }
        self.stats.merge(&stats);
        Ok(BatchReport { per_query, stats })
    }

    /// Statistics aggregated across everything this session has run.
    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    /// Resets the session-level statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_bfv::BfvParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn end_to_end_trusted_controller_mode() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(5150);
        let client = Client::new(&ctx, &mut rng);
        let data = BitString::from_ascii("protocol round trip test data");
        let mut server = Server::new(&ctx, client.encrypt_database(&data, &mut rng));
        server.install_index_generator(client.delegate_index_generation());

        let pattern = BitString::from_ascii("round trip");
        let q = client
            .prepare_query(&pattern, &mut rng)
            .expect("non-empty query");
        let got = server.search_indices(&q).expect("generator installed");
        assert_eq!(got, data.find_all(&pattern));
        assert!(server.hom_adds() > 0);
    }

    #[test]
    fn end_to_end_client_side_mode() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(5151);
        let client = Client::new(&ctx, &mut rng);
        let data = BitString::from_ascii("client side decryption flow");
        let mut server = Server::new(&ctx, client.encrypt_database(&data, &mut rng));

        let pattern = BitString::from_ascii("side");
        let q = client
            .prepare_query(&pattern, &mut rng)
            .expect("non-empty query");
        let result = server.search(&q);
        assert_eq!(client.decrypt_matches(&result), data.find_all(&pattern));
    }

    #[test]
    fn trusted_mode_requires_installation() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(5152);
        let client = Client::new(&ctx, &mut rng);
        let data = BitString::from_ascii("x");
        let mut server = Server::new(&ctx, client.encrypt_database(&data, &mut rng));
        let q = client
            .prepare_query(&BitString::from_ascii("x"), &mut rng)
            .expect("non-empty query");
        assert_eq!(server.search_indices(&q), Err(MatchError::NoIndexGenerator));
    }

    #[test]
    fn empty_query_is_a_typed_error_not_a_panic() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(5153);
        let client = Client::new(&ctx, &mut rng);
        assert_eq!(
            client.prepare_query(&BitString::new(), &mut rng).err(),
            Some(MatchError::EmptyQuery)
        );
    }

    #[test]
    fn session_batch_matches_ground_truth_across_thread_counts() {
        let data = BitString::from_ascii("batching queries over one shared encrypted database");
        let queries: Vec<BitString> = ["que", "shared", "database", "absent!", "e"]
            .iter()
            .map(|s| BitString::from_ascii(s))
            .collect();
        let mut baseline: Option<Vec<Vec<usize>>> = None;
        for threads in [1usize, 2, 5] {
            let config = MatcherConfig::new(Backend::Ciphermatch)
                .insecure_test()
                .seed(42)
                .threads(threads);
            let mut session = MatchSession::new(&config).unwrap();
            session.load_database(&data).unwrap();
            let report = session.run_batch(&queries).unwrap();
            let got = report.into_indices().expect("no per-query errors");
            for (q, indices) in queries.iter().zip(&got) {
                assert_eq!(indices, &data.find_all(q), "threads = {threads}");
            }
            match &baseline {
                None => baseline = Some(got),
                Some(b) => assert_eq!(&got, b, "fan-out must not change results"),
            }
            assert!(session.stats().hom_adds > 0);
        }
    }

    #[test]
    fn session_reports_per_query_errors_without_failing_the_batch() {
        let config = MatcherConfig::new(Backend::Yasuda)
            .insecure_test()
            .window(16)
            .threads(2);
        let mut session = MatchSession::new(&config).unwrap();
        let data = BitString::from_ascii("window mismatch handling");
        session.load_database(&data).unwrap();
        let good = data.slice(8, 16);
        let bad = data.slice(0, 9); // wrong length for the fixed window
        let report = session
            .run_batch(&[good.clone(), bad, good.clone()])
            .unwrap();
        assert_eq!(report.per_query[0].as_ref().unwrap(), &data.find_all(&good));
        assert_eq!(
            report.per_query[1],
            Err(MatchError::WindowMismatch {
                expected: 16,
                got: 9
            })
        );
        assert_eq!(report.per_query[2].as_ref().unwrap(), &data.find_all(&good));
    }

    #[test]
    fn session_requires_a_database() {
        let config = MatcherConfig::new(Backend::Plain);
        let mut session = MatchSession::new(&config).unwrap();
        assert_eq!(
            session.run_batch(&[BitString::from_ascii("q")]).err(),
            Some(MatchError::NoDatabase)
        );
    }
}
