//! Query preparation (paper §4.2.2, Algorithm 1 lines 4–9).
//!
//! The client negates the query, splits it into `seg_bits`-wide segments
//! for every possible bit offset `r` inside a segment (the paper's
//! "shifted variants"), and replicates each variant across all polynomial
//! coefficients so one `Hom-Add` tests every coefficient position at once.
//!
//! A query of length `k` at bit offset `o = seg_bits * G + r` covers
//! `s_r = ceil((r + k) / seg_bits)` consecutive segments; segments it only
//! partially covers carry a *don't-care mask*. Don't-care bits of the
//! negated query are zero, which (as proven in the module tests) makes the
//! all-ones check exact: no carry can cross from masked into covered bits.

use cm_bfv::Plaintext;
use cm_hemath::Poly;

use crate::bits::BitString;

/// One bit-offset class `r`: the negated query segments and their
/// don't-care masks for windows starting at `r` within a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignmentClass {
    /// Bit offset within a segment (`0 <= r < seg_bits`).
    pub r: usize,
    /// Window width in segments, `s_r = ceil((r + k) / seg_bits)`.
    pub window_segs: usize,
    /// Negated query value per window segment (don't-care bits are 0).
    pub neg_segments: Vec<u64>,
    /// Don't-care mask per window segment (1 = not covered by the query).
    pub masks: Vec<u64>,
}

/// Returns the `seg_bits` alignment classes of a query.
///
/// # Panics
///
/// Panics if the query is empty.
pub fn alignment_classes(query: &BitString, seg_bits: usize) -> Vec<AlignmentClass> {
    assert!(!query.is_empty(), "query must not be empty");
    let k = query.len();
    let full = (1u64 << seg_bits) - 1;
    (0..seg_bits)
        .map(|r| {
            let window_segs = (r + k).div_ceil(seg_bits);
            let mut neg_segments = Vec::with_capacity(window_segs);
            let mut masks = Vec::with_capacity(window_segs);
            for i in 0..window_segs {
                let mut value = 0u64;
                let mut mask = 0u64;
                for b in 0..seg_bits {
                    let x = i * seg_bits + b; // bit position within the window
                    let shift = seg_bits - 1 - b; // MSB-first layout
                    if x >= r && x < r + k {
                        // Covered: negated query bit.
                        if !query.get(x - r) {
                            value |= 1 << shift;
                        }
                    } else {
                        mask |= 1 << shift;
                    }
                }
                debug_assert_eq!(value & mask, 0);
                debug_assert!(value <= full && mask <= full);
                neg_segments.push(value);
                masks.push(mask);
            }
            AlignmentClass {
                r,
                window_segs,
                neg_segments,
                masks,
            }
        })
        .collect()
}

/// Checks one result segment: after `Hom-Add`, a covered-bit match shows as
/// all ones under the don't-care mask.
#[inline]
pub fn segment_matches(sum: u64, mask: u64, seg_bits: usize) -> bool {
    let full = (1u64 << seg_bits) - 1;
    (sum | mask) & full == full
}

/// A prepared (plaintext) query variant: class `r` at replication phase
/// `phase`, laid out over `n` coefficients.
#[derive(Debug, Clone)]
pub struct QueryVariant {
    /// Bit offset class.
    pub r: usize,
    /// Replication phase in `[0, window_segs)`.
    pub phase: usize,
    /// Window width in segments (copied from the class).
    pub window_segs: usize,
    /// The replicated negated-query polynomial.
    pub plaintext: Plaintext,
}

/// Builds all `sum_r s_r` query variants for ring degree `n`.
///
/// Variant `(r, p)` stores negated-query segment `(c - p) mod s_r` at every
/// coefficient `c`, so the server's single `Hom-Add` against a database
/// polynomial evaluates all coefficient positions whose window phase is
/// compatible with `p`.
pub fn build_variants(classes: &[AlignmentClass], n: usize) -> Vec<QueryVariant> {
    let mut variants = Vec::new();
    for class in classes {
        let s = class.window_segs;
        for phase in 0..s {
            let coeffs: Vec<u64> = (0..n)
                .map(|c| {
                    let idx = (c + s - phase) % s; // (c - phase) mod s
                    class.neg_segments[idx]
                })
                .collect();
            variants.push(QueryVariant {
                r: class.r,
                phase,
                window_segs: s,
                plaintext: Plaintext::from_poly(Poly::from_coeffs(coeffs)),
            });
        }
    }
    variants
}

/// Total number of variants a query needs: `sum_{r} ceil((r + k)/seg_bits)`.
/// This is the query-expansion factor in the paper's cost model (≈
/// `seg_bits * ceil(k / seg_bits)`).
pub fn variant_count(k: usize, seg_bits: usize) -> usize {
    (0..seg_bits).map(|r| (r + k).div_ceil(seg_bits)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_and_window_sizes() {
        let q = BitString::from_bits(&[true; 16]);
        let classes = alignment_classes(&q, 16);
        assert_eq!(classes.len(), 16);
        assert_eq!(classes[0].window_segs, 1);
        for c in &classes[1..] {
            assert_eq!(c.window_segs, 2, "r={} should span 2 segments", c.r);
        }
        assert_eq!(variant_count(16, 16), 1 + 15 * 2);
    }

    #[test]
    fn aligned_class_has_no_mask() {
        let q = BitString::from_bytes(&[0xAB, 0xCD]);
        let classes = alignment_classes(&q, 16);
        let c0 = &classes[0];
        assert_eq!(c0.masks, vec![0]);
        // Negated query: !0xABCD
        assert_eq!(c0.neg_segments, vec![!0xABCDu64 & 0xFFFF]);
    }

    #[test]
    fn offset_class_masks_cover_uncovered_bits() {
        let q = BitString::from_bytes(&[0xFF]); // k = 8
        let classes = alignment_classes(&q, 16);
        // r = 4: query covers window bits [4, 12) -> high nibble and low
        // nibble are don't-care.
        let c = &classes[4];
        assert_eq!(c.window_segs, 1);
        assert_eq!(c.masks[0], 0xF00F);
        // Negated 0xFF is 0x00, so covered bits contribute 0.
        assert_eq!(c.neg_segments[0], 0x0000);
        // r = 12: query covers bits [12, 20) -> spans two segments.
        let c = &classes[12];
        assert_eq!(c.window_segs, 2);
        assert_eq!(c.masks[0], 0xFFF0);
        assert_eq!(c.masks[1], 0x0FFF);
    }

    #[test]
    fn segment_match_check_is_exact() {
        let seg_bits = 16;
        // Exhaustive-ish check over random data that the masked all-ones
        // test equals bit equality on covered bits (carry soundness).
        let q = BitString::from_bytes(&[0x5A]); // k = 8
        let classes = alignment_classes(&q, seg_bits);
        for (r, class) in classes.iter().enumerate().take(seg_bits - 8) {
            for trial in 0..2000u64 {
                let data = trial.wrapping_mul(0x9E37_79B9_7F4A_7C15) & 0xFFFF;
                let sum = (data + class.neg_segments[0]) & 0xFFFF;
                let matches = segment_matches(sum, class.masks[0], seg_bits);
                // Ground truth: covered bits of data equal the query bits.
                let covered: bool = (0..8).all(|j| {
                    let shift = seg_bits - 1 - (r + j);
                    let dbit = (data >> shift) & 1 == 1;
                    let qbit = (0x5Au64 >> (7 - j)) & 1 == 1;
                    dbit == qbit
                });
                assert_eq!(matches, covered, "r={r} data={data:04x}");
            }
        }
    }

    #[test]
    fn variants_replicate_with_phase() {
        let q = BitString::from_bits(&[true; 20]); // k=20 -> s_0 = 2
        let classes = alignment_classes(&q, 16);
        let variants = build_variants(&classes, 8);
        let v = variants.iter().find(|v| v.r == 0 && v.phase == 1).unwrap();
        let c = &classes[0];
        // coefficient 0 holds segment (0 - 1) mod 2 = 1, coefficient 1 holds 0.
        assert_eq!(v.plaintext.coeffs()[0], c.neg_segments[1]);
        assert_eq!(v.plaintext.coeffs()[1], c.neg_segments[0]);
        assert_eq!(v.plaintext.coeffs()[2], c.neg_segments[1]);
    }

    #[test]
    fn variant_count_grows_linearly_with_k() {
        assert!(variant_count(16, 16) < variant_count(64, 16));
        assert!(variant_count(64, 16) < variant_count(256, 16));
        // Roughly seg_bits * ceil(k/seg_bits).
        assert_eq!(
            variant_count(256, 16),
            (0..16usize).map(|r| (r + 256).div_ceil(16)).sum::<usize>()
        );
    }
}
