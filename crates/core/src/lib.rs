#![warn(missing_docs)]

//! # cm-core
//!
//! The CIPHERMATCH algorithm (Kabra et al., ASPLOS 2025): a
//! memory-efficient BFV data packing scheme and a secure exact string
//! matching algorithm that uses **only homomorphic addition**, plus the
//! paper's Boolean and arithmetic baselines and the client–server protocol
//! of Algorithm 1.
//!
//! ## The idea in one paragraph
//!
//! Pack 16 database bits into each plaintext coefficient (so encryption
//! only costs 4x in space), negate the query, and add it homomorphically:
//! wherever the database equals the query, `d + !q` is the all-ones
//! "match polynomial" value — detectable per coefficient without a single
//! homomorphic multiplication or rotation. Arbitrary query lengths and bit
//! offsets are handled with shifted/replicated query variants and
//! don't-care masks.
//!
//! ## Example
//!
//! Every engine sits behind the unified [`SecureMatcher`] API: pick a
//! [`Backend`], build it with [`MatcherConfig`], load a database, search.
//!
//! ```
//! use cm_core::{Backend, BitString, MatcherConfig};
//!
//! let mut matcher = MatcherConfig::new(Backend::Ciphermatch)
//!     .insecure_test() // small test parameters; drop for the paper's set
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let data = BitString::from_ascii("find the needle in this haystack");
//! matcher.load_database(&data).unwrap();
//! let hits = matcher.find_all(&BitString::from_ascii("needle")).unwrap();
//! assert_eq!(hits, vec![9 * 8]);
//! // CM-SW's server ran additions only — visible in the unified stats.
//! let stats = matcher.stats();
//! assert!(stats.hom_adds > 0);
//! assert_eq!(stats.hom_muls + stats.rotations + stats.bootstraps, 0);
//! ```
//!
//! Multi-query traffic goes through [`MatchSession`], which fans a batch
//! out across a session-owned [`exec::WorkerPool`] — the shared work-pool
//! runtime ([`exec`]) that every concurrent layer of the stack (sessions,
//! tenant matcher pools, shard executors, connection handling) runs on;
//! the explicit [`Client`]/[`Server`] protocol roles of Algorithm 1
//! remain available for the single-backend CM-SW flow.

pub mod api;
mod bits;
pub mod exec;
mod index_gen;
pub mod matchers;
mod packing;
mod protocol;
mod query;

pub use api::{
    erase, Backend, BatchedMatcher, BooleanMatcher, CiphermatchMatcher, ErasedMatcher, MatchError,
    MatchStats, MatcherConfig, PlainMatcher, SecureMatcher, StatsAccumulator, YasudaMatcher,
};
pub use bits::BitString;
pub use exec::{
    fan_out, join_all, wait_all, CompletionHandle, ExecOutcome, MatcherGuard, MatcherPool,
    PoolMetrics, WorkerPool,
};
pub use index_gen::{generate_indices, SumTable};
pub use matchers::batched::{BatchedDatabase, BatchedEngine};
pub use matchers::boolean::{BooleanDatabase, BooleanEngine, BooleanGateCount};
pub use matchers::ciphermatch::{
    CiphermatchEngine, EncryptedDatabase, EncryptedQuery, SearchResult, VariantSums,
};
pub use matchers::plain::bitwise_find_all;
pub use matchers::yasuda::{YasudaDatabase, YasudaEngine, YasudaQuery};
pub use matchers::{table1_profiles, ApproachProfile, CostClass};
pub use packing::{DensePacking, SingleBitPacking};
pub use protocol::{BatchReport, Client, IndexMode, MatchSession, Server, TrustedIndexGenerator};
pub use query::{
    alignment_classes, build_variants, segment_matches, variant_count, AlignmentClass, QueryVariant,
};
