#![warn(missing_docs)]

//! # cm-core
//!
//! The CIPHERMATCH algorithm (Kabra et al., ASPLOS 2025): a
//! memory-efficient BFV data packing scheme and a secure exact string
//! matching algorithm that uses **only homomorphic addition**, plus the
//! paper's Boolean and arithmetic baselines and the client–server protocol
//! of Algorithm 1.
//!
//! ## The idea in one paragraph
//!
//! Pack 16 database bits into each plaintext coefficient (so encryption
//! only costs 4x in space), negate the query, and add it homomorphically:
//! wherever the database equals the query, `d + !q` is the all-ones
//! "match polynomial" value — detectable per coefficient without a single
//! homomorphic multiplication or rotation. Arbitrary query lengths and bit
//! offsets are handled with shifted/replicated query variants and
//! don't-care masks.
//!
//! ## Example
//!
//! ```
//! use cm_bfv::{BfvContext, BfvParams};
//! use cm_core::{BitString, Client, Server};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let ctx = BfvContext::new(BfvParams::insecure_test_add());
//! let mut rng = StdRng::seed_from_u64(7);
//! let client = Client::new(&ctx, &mut rng);
//! let data = BitString::from_ascii("find the needle in this haystack");
//! let mut server = Server::new(&ctx, client.encrypt_database(&data, &mut rng));
//! server.install_index_generator(client.delegate_index_generation());
//!
//! let query = client.prepare_query(&BitString::from_ascii("needle"), &mut rng);
//! assert_eq!(server.search_indices(&query), vec![9 * 8]);
//! ```

mod bits;
mod index_gen;
pub mod matchers;
mod packing;
mod protocol;
mod query;

pub use bits::BitString;
pub use index_gen::{generate_indices, SumTable};
pub use matchers::batched::{BatchedDatabase, BatchedEngine};
pub use matchers::boolean::{BooleanDatabase, BooleanEngine, BooleanGateCount};
pub use matchers::ciphermatch::{
    CiphermatchEngine, CmSwStats, EncryptedDatabase, EncryptedQuery, SearchResult,
};
pub use matchers::plain::bitwise_find_all;
pub use matchers::yasuda::{YasudaDatabase, YasudaEngine, YasudaQuery, YasudaStats};
pub use matchers::{table1_profiles, ApproachProfile, CostClass};
pub use packing::{DensePacking, SingleBitPacking};
pub use protocol::{Client, IndexMode, Server, TrustedIndexGenerator};
pub use query::{
    alignment_classes, build_variants, segment_matches, variant_count, AlignmentClass, QueryVariant,
};
