//! Index generation (paper §4.2.2, "Index Generation"; Algorithm 1 line 12).
//!
//! After `Hom-Add`, a match shows as an all-ones "match polynomial" value
//! in the affected coefficients. This module turns a table of (decrypted)
//! result coefficients into the list of matching bit offsets. It is shared
//! by the software matcher (`CM-SW`) and the SSD controller's index
//! generation unit (`CM-IFP`), which both see the same sum values.

use std::collections::HashMap;

use crate::query::{segment_matches, AlignmentClass};

/// Result sums for every `(r, phase)` query variant: one `Vec<u64>` of
/// coefficient sums per database polynomial.
#[derive(Debug, Clone, Default)]
pub struct SumTable {
    by_variant: HashMap<(usize, usize), Vec<Vec<u64>>>,
}

impl SumTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores the per-polynomial sums of variant `(r, phase)`.
    pub fn insert(&mut self, r: usize, phase: usize, sums: Vec<Vec<u64>>) {
        self.by_variant.insert((r, phase), sums);
    }

    /// Looks up the sum at `(r, phase, poly, coeff)`.
    fn sum(&self, r: usize, phase: usize, poly: usize, coeff: usize) -> Option<u64> {
        self.by_variant
            .get(&(r, phase))
            .and_then(|polys| polys.get(poly))
            .and_then(|cs| cs.get(coeff))
            .copied()
    }

    /// Number of stored variants.
    pub fn variant_count(&self) -> usize {
        self.by_variant.len()
    }
}

/// Scans the sum table for all matching bit offsets.
///
/// Geometry: bit offset `o = seg_bits * G + r` maps to window segments
/// `G .. G + s_r`; window segment `i` lives in polynomial
/// `(G + i) / n` at coefficient `(G + i) % n`, and was tested by variant
/// `(r, phase)` with `phase = coeff - i mod s_r` (the phase whose
/// replicated pattern placed negated-query segment `i` at that
/// coefficient).
pub fn generate_indices(
    classes: &[AlignmentClass],
    sums: &SumTable,
    n: usize,
    seg_bits: usize,
    total_bits: usize,
    k: usize,
) -> Vec<usize> {
    let mut matches = Vec::new();
    if k == 0 || k > total_bits {
        return matches;
    }
    for o in 0..=(total_bits - k) {
        let g = o / seg_bits;
        let r = o % seg_bits;
        let class = &classes[r];
        let s = class.window_segs;
        let ok = (0..s).all(|i| {
            let global = g + i;
            let poly = global / n;
            let coeff = global % n;
            let phase = (coeff + s - (i % s)) % s;
            match sums.sum(r, phase, poly, coeff) {
                Some(sum) => segment_matches(sum, class.masks[i], seg_bits),
                None => false,
            }
        });
        if ok {
            matches.push(o);
        }
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitString;
    use crate::query::{alignment_classes, build_variants};

    /// Computes the plaintext sum table the way the server would (segment
    /// value + negated query segment, mod 2^seg_bits), without encryption.
    fn plain_sum_table(
        db: &BitString,
        query: &BitString,
        n: usize,
        seg_bits: usize,
    ) -> (Vec<AlignmentClass>, SumTable) {
        let classes = alignment_classes(query, seg_bits);
        let variants = build_variants(&classes, n);
        let polys = db.segment_count(seg_bits).div_ceil(n).max(1);
        let modulus = 1u64 << seg_bits;
        let mut table = SumTable::new();
        for v in &variants {
            let mut all = Vec::with_capacity(polys);
            for j in 0..polys {
                let sums: Vec<u64> = (0..n)
                    .map(|c| {
                        let d = db.segment_value(j * n + c, seg_bits);
                        (d + v.plaintext.coeffs()[c]) % modulus
                    })
                    .collect();
                all.push(sums);
            }
            table.insert(v.r, v.phase, all);
        }
        (classes, table)
    }

    fn check(db: &BitString, query: &BitString, n: usize, seg_bits: usize) {
        let (classes, table) = plain_sum_table(db, query, n, seg_bits);
        let got = generate_indices(&classes, &table, n, seg_bits, db.len(), query.len());
        let expect = db.find_all(query);
        assert_eq!(got, expect, "db len {} query len {}", db.len(), query.len());
    }

    #[test]
    fn aligned_match_is_found() {
        let db = BitString::from_bytes(&[0x12, 0x34, 0xAB, 0xCD]);
        let query = BitString::from_bytes(&[0xAB, 0xCD]);
        check(&db, &query, 8, 16);
    }

    #[test]
    fn unaligned_matches_are_found() {
        // Query straddles segment boundaries at various offsets.
        let db = BitString::from_bytes(&[0b0001_1010, 0b1100_0111, 0x55, 0xAA]);
        for off in 0..17 {
            if off + 11 > db.len() {
                break;
            }
            let query = db.slice(off, 11);
            let (classes, table) = plain_sum_table(&db, &query, 4, 16);
            let got = generate_indices(&classes, &table, 4, 16, db.len(), query.len());
            assert!(got.contains(&off), "offset {off} missing: {got:?}");
            assert_eq!(got, db.find_all(&query), "offset {off}");
        }
    }

    #[test]
    fn no_false_positives_on_random_data() {
        // Pseudo-random DB, absent pattern.
        let bytes: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(197) ^ 0x5A) as u8)
            .collect();
        let db = BitString::from_bytes(&bytes);
        let query = BitString::from_bits(&[true; 23]); // 23 ones unlikely
        check(&db, &query, 8, 16);
    }

    #[test]
    fn query_spanning_polynomials() {
        // n = 2 coefficients per poly -> windows cross polynomial borders.
        let db = BitString::from_bytes(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08]);
        let query = db.slice(24, 32); // crosses the poly boundary at segment 2
        check(&db, &query, 2, 16);
    }

    #[test]
    fn eight_bit_segments_work_too() {
        let db = BitString::from_ascii("abracadabra");
        let query = BitString::from_ascii("cad");
        check(&db, &query, 4, 8);
        let query2 = BitString::from_ascii("abra");
        check(&db, &query2, 4, 8);
    }

    #[test]
    fn overlapping_occurrences() {
        let db = BitString::from_bits(&[true; 40]);
        let query = BitString::from_bits(&[true; 16]);
        check(&db, &query, 4, 16); // every offset 0..24 matches
    }

    #[test]
    fn empty_and_oversized_queries_yield_nothing() {
        let db = BitString::from_bytes(&[0xFF; 4]);
        let classes = alignment_classes(&BitString::from_bits(&[true]), 16);
        let table = SumTable::new();
        assert!(generate_indices(&classes, &table, 4, 16, db.len(), 0).is_empty());
        assert!(generate_indices(&classes, &table, 4, 16, db.len(), 999).is_empty());
    }
}
