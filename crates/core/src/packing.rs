//! Data packing schemes (paper §4.2.1 and §3.1).
//!
//! [`DensePacking`] is CIPHERMATCH's memory-efficient scheme: every
//! plaintext coefficient carries `log2(t)` bits (16 with the paper's
//! parameters), so one degree-`n` polynomial packs `n * 16` database bits
//! and the encrypted database is only 4x the plain one.
//!
//! [`SingleBitPacking`] is the scheme of the arithmetic baseline
//! (Yasuda et al. \[27\]): one bit per coefficient, 64x blow-up after
//! encryption — the gap Figure 2a quantifies.

use cm_bfv::{BfvContext, Plaintext};
use cm_hemath::Poly;

use crate::bits::BitString;

/// CIPHERMATCH's dense packing: `seg_bits` bits per coefficient.
#[derive(Debug, Clone)]
pub struct DensePacking {
    n: usize,
    seg_bits: usize,
}

impl DensePacking {
    /// Creates the packing for a BFV context; `seg_bits = log2(t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a power of two (dense packing fills whole
    /// coefficients with packed bits).
    pub fn new(ctx: &BfvContext) -> Self {
        let t = ctx.params().t;
        assert!(
            t.is_power_of_two(),
            "dense packing requires a power-of-two t"
        );
        Self {
            n: ctx.params().n,
            seg_bits: t.trailing_zeros() as usize,
        }
    }

    /// Bits packed per coefficient (16 with paper parameters).
    pub fn seg_bits(&self) -> usize {
        self.seg_bits
    }

    /// Bits packed per plaintext polynomial (`n * seg_bits`).
    pub fn bits_per_poly(&self) -> usize {
        self.n * self.seg_bits
    }

    /// Packs a bit string into plaintext polynomials (paper Eq. 5–6).
    /// The input is implicitly zero-padded to fill the last polynomial.
    pub fn pack(&self, data: &BitString) -> Vec<Plaintext> {
        let segs = data.segment_count(self.seg_bits).max(1);
        let polys = segs.div_ceil(self.n);
        (0..polys)
            .map(|j| {
                let coeffs: Vec<u64> = (0..self.n)
                    .map(|c| data.segment_value(j * self.n + c, self.seg_bits))
                    .collect();
                Plaintext::from_poly(Poly::from_coeffs(coeffs))
            })
            .collect()
    }

    /// Unpacks plaintext polynomials back to a bit string of `total_bits`.
    pub fn unpack(&self, polys: &[Plaintext], total_bits: usize) -> BitString {
        let mut out = BitString::new();
        'outer: for pt in polys {
            for &coeff in pt.coeffs() {
                for b in (0..self.seg_bits).rev() {
                    if out.len() == total_bits {
                        break 'outer;
                    }
                    out.push((coeff >> b) & 1 == 1);
                }
            }
        }
        out
    }
}

/// Yasuda-style single-bit packing: coefficient `i` holds bit `i`.
#[derive(Debug, Clone)]
pub struct SingleBitPacking {
    n: usize,
}

impl SingleBitPacking {
    /// Creates the packing for a BFV context.
    pub fn new(ctx: &BfvContext) -> Self {
        Self { n: ctx.params().n }
    }

    /// Bits packed per plaintext polynomial (`n`).
    pub fn bits_per_poly(&self) -> usize {
        self.n
    }

    /// Packs one block of up to `n` bits starting at `start` ("packing
    /// type 1" of \[27\]): `m(x) = sum_i d_i x^i`.
    pub fn pack_block(&self, data: &BitString, start: usize) -> Plaintext {
        let coeffs: Vec<u64> = (0..self.n)
            .map(|i| {
                let idx = start + i;
                if idx < data.len() {
                    data.get(idx) as u64
                } else {
                    0
                }
            })
            .collect();
        Plaintext::from_poly(Poly::from_coeffs(coeffs))
    }

    /// Packs a query ("packing type 2" of \[27\]):
    /// `q(x) = sum_j (-q_j) x^(n-j)` so that `m(x) q(x)` accumulates the
    /// inner products of all alignments in its coefficients.
    ///
    /// # Panics
    ///
    /// Panics if the query is longer than `n`.
    pub fn pack_query(&self, query: &BitString, t: u64) -> Plaintext {
        assert!(query.len() <= self.n, "query longer than ring degree");
        let mut coeffs = vec![0u64; self.n];
        for j in 0..query.len() {
            if query.get(j) {
                if j == 0 {
                    // -q_0 x^n = +q_0 (since x^n = -1).
                    coeffs[0] = (coeffs[0] + 1) % t;
                } else {
                    coeffs[self.n - j] = (coeffs[self.n - j] + t - 1) % t;
                }
            }
        }
        Plaintext::from_poly(Poly::from_coeffs(coeffs))
    }

    /// Packs the all-ones window of width `k` with type-2 packing, used to
    /// compute the windowed Hamming weight of the data block.
    pub fn pack_ones_window(&self, k: usize, t: u64) -> Plaintext {
        let ones = BitString::from_bits(&vec![true; k]);
        self.pack_query(&ones, t)
    }

    /// Number of blocks needed to cover sliding windows of width `k` over
    /// `total_bits`, with blocks overlapping by `k - 1` bits.
    pub fn block_count(&self, total_bits: usize, k: usize) -> usize {
        if total_bits < k {
            return 0;
        }
        let usable = self.n - (k - 1);
        (total_bits - k + 1).div_ceil(usable.max(1))
    }

    /// Start offset of block `b` (stride `n - k + 1`).
    pub fn block_start(&self, b: usize, k: usize) -> usize {
        b * (self.n - (k - 1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_bfv::BfvParams;

    fn ctx_dense() -> BfvContext {
        BfvContext::new(BfvParams::insecure_test_add()) // t = 2^8 -> 8 bits/coeff
    }

    #[test]
    fn dense_pack_roundtrip() {
        let ctx = ctx_dense();
        let p = DensePacking::new(&ctx);
        assert_eq!(p.seg_bits(), 8);
        let data = BitString::from_ascii("the quick brown fox");
        let polys = p.pack(&data);
        assert_eq!(polys.len(), 1);
        assert_eq!(p.unpack(&polys, data.len()), data);
    }

    #[test]
    fn dense_pack_spans_multiple_polys() {
        let ctx = ctx_dense();
        let p = DensePacking::new(&ctx);
        // 300 bytes > 256 coefficients x 8 bits = 2048 bits = 256 bytes.
        let bytes: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        let data = BitString::from_bytes(&bytes);
        let polys = p.pack(&data);
        assert_eq!(polys.len(), 2);
        assert_eq!(p.unpack(&polys, data.len()), data);
    }

    #[test]
    fn dense_packing_matches_paper_segment_layout() {
        let ctx = ctx_dense();
        let p = DensePacking::new(&ctx);
        let data = BitString::from_bytes(&[0xAB, 0xCD]);
        let polys = p.pack(&data);
        assert_eq!(polys[0].coeffs()[0], 0xAB);
        assert_eq!(polys[0].coeffs()[1], 0xCD);
    }

    #[test]
    fn single_bit_type1_packs_bits_as_coefficients() {
        let ctx = BfvContext::new(BfvParams::insecure_test_mul());
        let p = SingleBitPacking::new(&ctx);
        let data = BitString::from_bits(&[true, false, true, true]);
        let pt = p.pack_block(&data, 0);
        assert_eq!(&pt.coeffs()[..4], &[1, 0, 1, 1]);
        let shifted = p.pack_block(&data, 2);
        assert_eq!(&shifted.coeffs()[..2], &[1, 1]);
    }

    #[test]
    fn type2_query_convolution_computes_inner_products() {
        // Plaintext check of the Yasuda trick: coefficients of m * q are the
        // sliding inner products.
        let ctx = BfvContext::new(BfvParams::insecure_test_mul());
        let p = SingleBitPacking::new(&ctx);
        let t = ctx.params().t;
        let data = BitString::from_bits(&[true, true, false, true, false, true]);
        let query = BitString::from_bits(&[true, false, true]);
        let m = p.pack_block(&data, 0);
        let q = p.pack_query(&query, t);
        // Multiply in the plaintext ring R_t.
        let rt = cm_hemath::RingContext::new(cm_hemath::Modulus::new(t), ctx.params().n);
        let prod = rt.mul(m.poly(), q.poly());
        for i in 0..=3 {
            let expect: u64 = (0..3)
                .map(|j| (data.get(i + j) && query.get(j)) as u64)
                .sum();
            assert_eq!(prod.coeffs()[i], expect, "inner product at {i}");
        }
    }

    #[test]
    fn block_geometry_covers_all_windows() {
        let ctx = BfvContext::new(BfvParams::insecure_test_mul());
        let p = SingleBitPacking::new(&ctx); // n = 256
        let k = 17;
        let total = 1000;
        let blocks = p.block_count(total, k);
        // Every window start in [0, total - k] must fall inside some block
        // with k - 1 bits of slack.
        let usable = 256 - (k - 1);
        assert_eq!(blocks, (total - k + 1).div_ceil(usable));
        let last_start = p.block_start(blocks - 1, k);
        assert!(last_start + 256 >= total, "last block must reach the end");
    }
}
