#![warn(missing_docs)]

//! # ciphermatch
//!
//! A from-scratch Rust reproduction of **CIPHERMATCH** (Kabra et al.,
//! ASPLOS 2025): homomorphic-encryption-based secure exact string matching
//! accelerated by memory-efficient data packing and in-flash processing.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`hemath`] — modular arithmetic, negacyclic NTT, polynomial rings;
//! * [`bfv`] — the BFV scheme (Hom-Add, Hom-Mul, rotations, batching);
//! * [`tfhe`] — TFHE-style Boolean FHE with gate bootstrapping (the
//!   Boolean baseline's substrate);
//! * [`core`] — the CIPHERMATCH algorithm, its baselines and the
//!   client–server protocol;
//! * [`server`] — the sharded, multi-tenant serving subsystem: binary
//!   wire protocol over TCP, thread-per-shard execution, and the CM-IFP
//!   engine as a first-class backend;
//! * [`flash`] / [`ssd`] — the 3D NAND + SSD simulators with the `bop_add`
//!   in-flash adder and `CM-search` command;
//! * [`telemetry`] — lock-free metrics (counters, gauges, log₂
//!   histograms) and per-frame request tracing for the serving stack;
//! * [`pum`] — the SIMDRAM-style processing-using-memory model;
//! * [`sim`] — the analytical models reproducing the paper's figures;
//! * [`workloads`] — DNA and key-value workload generators;
//! * [`aes`] — the AES engine for secure index transmission.
//!
//! ## Quickstart
//!
//! Every secure-matching engine sits behind the unified
//! [`SecureMatcher`](core::SecureMatcher) API: pick a
//! [`Backend`](core::Backend), build it with
//! [`MatcherConfig`](core::MatcherConfig), load a database, search. Batch
//! traffic goes through a [`MatchSession`](core::MatchSession):
//!
//! ```
//! use ciphermatch::core::{Backend, BitString, MatchSession, MatcherConfig};
//!
//! let config = MatcherConfig::new(Backend::Ciphermatch)
//!     .insecure_test() // small test parameters; drop for the paper's set
//!     .seed(42)
//!     .threads(2);
//! let mut session = MatchSession::new(&config).unwrap();
//! session
//!     .load_database(&BitString::from_ascii("secure string matching in storage"))
//!     .unwrap();
//! let queries = [BitString::from_ascii("string"), BitString::from_ascii("storage")];
//! let report = session.run_batch(&queries).unwrap();
//! assert_eq!(report.per_query[0].as_ref().unwrap(), &vec![7 * 8]);
//! assert_eq!(report.per_query[1].as_ref().unwrap(), &vec![26 * 8]);
//! ```

pub use cm_aes as aes;
pub use cm_bfv as bfv;
pub use cm_core as core;
pub use cm_flash as flash;
pub use cm_hemath as hemath;
pub use cm_pum as pum;
pub use cm_server as server;
pub use cm_sim as sim;
pub use cm_ssd as ssd;
pub use cm_telemetry as telemetry;
pub use cm_tfhe as tfhe;
pub use cm_workloads as workloads;
