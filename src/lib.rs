#![warn(missing_docs)]

//! # ciphermatch
//!
//! A from-scratch Rust reproduction of **CIPHERMATCH** (Kabra et al.,
//! ASPLOS 2025): homomorphic-encryption-based secure exact string matching
//! accelerated by memory-efficient data packing and in-flash processing.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`hemath`] — modular arithmetic, negacyclic NTT, polynomial rings;
//! * [`bfv`] — the BFV scheme (Hom-Add, Hom-Mul, rotations, batching);
//! * [`tfhe`] — TFHE-style Boolean FHE with gate bootstrapping (the
//!   Boolean baseline's substrate);
//! * [`core`] — the CIPHERMATCH algorithm, its baselines and the
//!   client–server protocol;
//! * [`flash`] / [`ssd`] — the 3D NAND + SSD simulators with the `bop_add`
//!   in-flash adder and `CM-search` command;
//! * [`pum`] — the SIMDRAM-style processing-using-memory model;
//! * [`sim`] — the analytical models reproducing the paper's figures;
//! * [`workloads`] — DNA and key-value workload generators;
//! * [`aes`] — the AES engine for secure index transmission.
//!
//! ## Quickstart
//!
//! ```
//! use cm_bfv::{BfvContext, BfvParams};
//! use cm_core::{BitString, Client, Server};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let ctx = BfvContext::new(BfvParams::insecure_test_add());
//! let mut rng = StdRng::seed_from_u64(42);
//! let client = Client::new(&ctx, &mut rng);
//! let data = BitString::from_ascii("secure string matching in storage");
//! let mut server = Server::new(&ctx, client.encrypt_database(&data, &mut rng));
//! server.install_index_generator(client.delegate_index_generation());
//! let query = client.prepare_query(&BitString::from_ascii("string"), &mut rng);
//! assert_eq!(server.search_indices(&query), vec![7 * 8]);
//! ```

pub use cm_aes as aes;
pub use cm_bfv as bfv;
pub use cm_core as core;
pub use cm_flash as flash;
pub use cm_hemath as hemath;
pub use cm_pum as pum;
pub use cm_sim as sim;
pub use cm_ssd as ssd;
pub use cm_tfhe as tfhe;
pub use cm_workloads as workloads;
