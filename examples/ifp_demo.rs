//! CM-IFP demo: homomorphic addition computed *inside the flash array*.
//!
//! Stores an encrypted database in the simulated SSD's CIPHERMATCH region
//! (vertical layout, SLC mode), executes `CM-search` — the `bop_add`
//! bit-serial adder of Fig. 5 running in the sensing/data latches — and
//! shows the result is bit-identical to software Hom-Add, wears the flash
//! by zero program/erase cycles, and returns AES-sealed indices (§7.2).
//!
//! Run with: `cargo run --release --example ifp_demo`

use cm_bfv::{BfvContext, BfvParams, Decryptor, Encryptor, KeyGenerator};
use cm_core::{BitString, CiphermatchEngine, TrustedIndexGenerator};
use cm_flash::{FlashGeometry, FlashTimings};
use cm_ssd::{CmIfpServer, SecureIndexChannel, TransposeMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // q = 2^32: in-flash wrapping addition IS Hom-Add (see DESIGN.md).
    let ctx = BfvContext::new(BfvParams::insecure_test_pow2());
    let mut rng = StdRng::seed_from_u64(1234);
    let (sk, pk) = {
        let kg = KeyGenerator::new(&ctx, &mut rng);
        (kg.secret_key(), kg.public_key(&mut rng))
    };
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk.clone());
    let mut engine = CiphermatchEngine::new(&ctx);

    let data = BitString::from_ascii("computation happens inside the NAND flash latches");
    let pattern = BitString::from_ascii("NAND flash");
    let db = engine.encrypt_database(&enc, &data, &mut rng);
    let query = engine.prepare_query(&enc, &pattern, &mut rng);

    // Software reference.
    let sw = engine.search(&db, &query);
    let sw_indices = engine.generate_indices(&dec, &sw);

    // In-flash execution.
    let mut server = CmIfpServer::new(
        &ctx,
        FlashGeometry::tiny_test(),
        TransposeMode::Software,
        &db,
    );
    let (ifp, reports) = server.search(&query);
    assert_eq!(
        ifp, sw,
        "in-flash Hom-Add must be bit-identical to software"
    );
    let ifp_indices = engine.generate_indices(&dec, &ifp);
    assert_eq!(ifp_indices, sw_indices);
    println!("match at bit offsets {ifp_indices:?} — identical in flash and software");

    // Cost report from the functional run.
    let t = FlashTimings::paper_default();
    let total_reads: u64 = reports.iter().map(|r| r.ledger.reads).sum();
    let total_dmas: u64 = reports.iter().map(|r| r.ledger.dmas).sum();
    let wear: u64 = reports.iter().map(|r| r.ledger.wear()).sum();
    let bop_adds: u64 = reports.iter().map(|r| r.bop_adds).sum();
    println!(
        "flash ops: {bop_adds} bop_adds, {total_reads} SLC reads, {total_dmas} page DMAs, \
         {wear} program/erase cycles"
    );
    println!(
        "paper cost model: T_bop_add = {:.2} us (Eq. 10), T_bit_add = {:.2} us (Eq. 9)",
        t.t_bop_add() * 1e6,
        t.t_bit_add() * 1e6
    );

    // §7.2: the index list returns AES-256-sealed.
    let index_gen = TrustedIndexGenerator::from_secret(&ctx, sk);
    let (indices, _) = server.cm_search_command(&query, &index_gen);
    let channel = SecureIndexChannel::new(&[0x42; 32]);
    let (sealed, latency) = channel.seal(&indices, 7);
    println!(
        "sealed {} indices into {} ciphertext bytes ({:.1} ns hardware AES latency)",
        indices.len(),
        sealed.len(),
        latency * 1e9
    );
    assert_eq!(channel.open(&sealed, 7), indices);
    println!("client unsealed the same indices — CM-IFP pipeline complete");
}
