//! The serving subsystem end to end: one process, three tenants with
//! different key material — one on sharded CM-SW ([`Backend::Ciphermatch`]),
//! one on the in-flash CM-IFP engine, and one provisioned *entirely over
//! the wire* through the remote database lifecycle (chunked upload,
//! byte-accurate accounting, authorized eviction) — answering encrypted
//! queries concurrently over the TCP wire protocol.
//!
//! Per tenant, the flow is the paper's Figure 6: the key owner encrypts
//! the database once and provisions the server (delegated index
//! generation + AES channel key, the offline step); queries are encrypted
//! client-side with the tenant's [`QueryKit`], travel as binary wire
//! frames, run sharded on the host or inside the simulated SSD, and only
//! AES-sealed index lists come back.
//!
//! Run with: `cargo run --release --example secure_match_server`

use std::sync::Arc;

use cm_bfv::BfvParams;
use cm_core::{Backend, BitString, MatcherConfig};
use cm_flash::FlashGeometry;
use cm_server::{
    IfpMatcher, MatchClient, MatchServer, ServerConfig, ShardedCmMatcher, TenantAccess,
    TenantRegistry, TenantSpec,
};
use cm_ssd::TransposeMode;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALICE_KEY: [u8; 32] = [0xA1; 32];
const BOB_KEY: [u8; 32] = [0xB2; 32];
const CARLA_KEY: [u8; 32] = [0xCA; 32];

fn main() {
    // --- Offline provisioning: two tenants, two key domains ----------
    let alice_data = {
        let bytes: Vec<u8> = (0..1500usize).map(|i| (i * 41 % 249) as u8).collect();
        BitString::from_bytes(&bytes)
    };
    let bob_data = BitString::from_ascii(
        "bob keeps his genome fragments in the drive and the drive does the matching",
    );

    // Alice: CM-SW sharded across 4 worker threads. (The insecure test
    // parameter set keeps the demo fast; swap in
    // BfvParams::ciphermatch_1024() for the paper's set.)
    let alice = ShardedCmMatcher::new(BfvParams::insecure_test_add(), 4, 11).unwrap();
    let alice_kit = alice.query_kit();

    // Bob: CM-IFP — the encrypted database lives inside a simulated SSD
    // and `Hom-Add` runs in the flash array's latches.
    let mut rng = StdRng::seed_from_u64(22);
    let bob = IfpMatcher::new(
        BfvParams::insecure_test_pow2(),
        FlashGeometry::tiny_test(),
        TransposeMode::Hardware,
        &mut rng,
    )
    .unwrap();
    let bob_kit = bob.query_kit();

    // Alice gets a matcher pool of 2 (two of her queries run at once,
    // sharing one shard executor and one encrypted database); bob keeps
    // the default pool size.
    let mut registry = TenantRegistry::new();
    registry
        .register_with_workers("alice", Box::new(alice), 2, &ALICE_KEY, &alice_data)
        .unwrap();
    registry
        .register("bob", cm_core::erase(bob, 22), &BOB_KEY, &bob_data)
        .unwrap();

    // --- Serve (bounded sockets + in-flight work, bounded memory) -----
    let server = MatchServer::with_config(
        registry,
        ServerConfig {
            max_open_sockets: 1024,
            max_inflight_frames: 8,
            memory_budget: Some(32 << 20),
            // Any request slower than 50 ms end-to-end prints a
            // structured slow_query line with per-stage timings.
            slow_query_micros: Some(50_000),
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn("127.0.0.1:0")
    .unwrap();
    let addr = server.addr();
    println!("serving on {addr} (1024 sockets, 8 in-flight frames, 32 MiB hot budget)");

    // --- Carla: provisioned entirely over the wire --------------------
    // The remote lifecycle: she builds her matcher locally, encrypts her
    // database under her own keys, and ships only the serialized
    // ciphertexts; the server rebuilds the matcher from the seed-exact
    // spec and accounts every byte against its memory budget.
    let carla_data = BitString::from_ascii(
        "carla provisions her encrypted database over the wire and can retire it the same way",
    );
    let carla_config = MatcherConfig::new(Backend::Ciphermatch)
        .insecure_test()
        .seed(33);
    let mut carla_owner = carla_config.build().unwrap();
    carla_owner.load_database(&carla_data).unwrap();
    let carla_bytes = carla_owner.export_database().unwrap();
    let carla = TenantAccess::new("carla", &CARLA_KEY);
    {
        let mut client = MatchClient::connect(addr).unwrap();
        let spec = TenantSpec::from_config(&carla_config, 2);
        let (bytes, _) = client
            .upload_database(&carla, &spec, &carla_bytes, 1)
            .unwrap();
        println!("carla: uploaded {bytes} bytes over the wire");
        let info = client.database_info("carla").unwrap();
        println!(
            "carla: backend {}, resident {}, {} bytes accounted",
            info.backend, info.resident, info.bytes
        );
    }

    {
        let mut probe = MatchClient::connect(addr).unwrap();
        println!("backends: {}", probe.backends().unwrap().join(", "));
        for t in probe.tenants().unwrap() {
            println!("tenant {:10} -> backend {}", t.id, t.backend);
        }
    }

    // --- Concurrent clients -------------------------------------------
    // All three tenants' queries fan out together on the shared exec
    // runtime (`cm_core::exec::join_all`), not on ad-hoc scoped threads.
    let alice_kit = Arc::new(alice_kit);
    let bob_kit = Arc::new(bob_kit);
    let mut clients: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    let alice_slices = [(24usize, 32usize), (8192 - 13, 40), (6000, 16)];
    for (i, (start, len)) in alice_slices.into_iter().enumerate() {
        let (kit, data) = (Arc::clone(&alice_kit), &alice_data);
        clients.push(Box::new(move || {
            let mut rng = StdRng::seed_from_u64(100 + i as u64);
            let pattern = data.slice(start, len);
            let encoded = kit.encode_query(&pattern, &mut rng).unwrap();
            let mut client = MatchClient::connect(addr).unwrap();
            let reply = client
                .search_encoded(&TenantAccess::new("alice", &ALICE_KEY), &encoded)
                .unwrap();
            assert_eq!(reply.indices, data.find_all(&pattern));
            let per_shard: Vec<u64> = reply.shard_stats.iter().map(|s| s.hom_adds).collect();
            println!(
                "alice: {len:2}-bit query at {start:5} -> {} match(es), \
                 hom-adds per shard {per_shard:?}",
                reply.indices.len()
            );
        }));
    }
    for (i, pattern) in ["drive", "genome fragments"].into_iter().enumerate() {
        let (kit, data) = (Arc::clone(&bob_kit), &bob_data);
        clients.push(Box::new(move || {
            let mut rng = StdRng::seed_from_u64(200 + i as u64);
            let pattern = BitString::from_ascii(pattern);
            let encoded = kit.encode_query(&pattern, &mut rng).unwrap();
            let mut client = MatchClient::connect(addr).unwrap();
            let reply = client
                .search_encoded(&TenantAccess::new("bob", &BOB_KEY), &encoded)
                .unwrap();
            assert_eq!(reply.indices, data.find_all(&pattern));
            assert_eq!(reply.stats.flash_wear, 0);
            println!(
                "bob:   {:2}-bit query in-flash   -> {} match(es), \
                 {} hom-adds, flash wear {}",
                pattern.len(),
                reply.indices.len(),
                reply.stats.hom_adds,
                reply.stats.flash_wear
            );
        }));
    }
    for pattern in ["over the wire", "retire"] {
        let data = &carla_data;
        let carla = &carla;
        clients.push(Box::new(move || {
            let pattern = BitString::from_ascii(pattern);
            let mut client = MatchClient::connect(addr).unwrap();
            let reply = client.search_bits(carla, &pattern).unwrap();
            assert_eq!(reply.indices, data.find_all(&pattern));
            println!(
                "carla: {:2}-bit query (uploaded) -> {} match(es)",
                pattern.len(),
                reply.indices.len()
            );
        }));
    }
    cm_core::exec::join_all(clients).unwrap();

    // --- Lifetime accounting ------------------------------------------
    let mut probe = MatchClient::connect(addr).unwrap();
    for tenant in ["alice", "bob", "carla"] {
        let (totals, queries) = probe.tenant_stats(tenant).unwrap();
        println!("totals {tenant:6} -> {queries} queries, {totals}");
    }

    // --- Observability: scrape the server like Prometheus would --------
    // The same snapshot is served over the wire (`Request::Metrics`);
    // render_text() is the text exposition an operator endpoint would
    // return. Print the serving-path highlights.
    let snapshot = probe.metrics().unwrap();
    let text = snapshot.render_text();
    println!("--- metrics (cm_server_* excerpt) ---");
    for line in text.lines().filter(|l| {
        l.starts_with("cm_server_requests_total")
            || l.starts_with("cm_server_request_latency_us_count")
            || l.starts_with("cm_registry_")
    }) {
        println!("{line}");
    }
    let served = snapshot
        .counter("cm_server_requests_total", &[("tag", "match")])
        .unwrap_or(0);
    println!("--- {served} match frames served ---");

    // --- Carla retires her database the way she placed it --------------
    let freed = probe.evict_database(&carla, 2).unwrap();
    println!("carla: evicted, {freed} bytes released from the hot tier");
    assert!(matches!(
        probe.search_bits(&carla, &BitString::from_ascii("wire")),
        Err(cm_core::MatchError::UnknownTenant(_))
    ));
    server.shutdown();
    println!("server stopped cleanly");
}
