//! Case study 1 (paper §5.3): exact DNA string matching.
//!
//! Seeds from a reference genome (2 bits per base) are located in an
//! encrypted genome database — the seeding step of read mapping — using
//! the CM-SW matcher. Query sizes follow the paper: 8–128 base pairs
//! (16–256 bits).
//!
//! Run with: `cargo run --release --example dna_read_mapping`

use cm_bfv::{BfvContext, BfvParams, Decryptor, Encryptor, KeyGenerator};
use cm_core::{BitString, CiphermatchEngine};
use cm_workloads::DnaGenome;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let ctx = BfvContext::new(BfvParams::ciphermatch_1024());
    let mut rng = StdRng::seed_from_u64(7);
    let (sk, pk) = {
        let kg = KeyGenerator::new(&ctx, &mut rng);
        (kg.secret_key(), kg.public_key(&mut rng))
    };
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk);
    let mut engine = CiphermatchEngine::new(&ctx);

    // A small synthetic reference genome (the paper uses 32 GB; the
    // algorithm is identical, the analytical models extrapolate).
    let genome = DnaGenome::random(16_384, &mut rng);
    let genome_bits = BitString::from_dna(&genome.to_string_seq());
    println!(
        "genome: {} bases = {} bits",
        genome.len(),
        genome_bits.len()
    );

    let t0 = Instant::now();
    let db = engine.encrypt_database(&enc, &genome_bits, &mut rng);
    println!(
        "encrypted once into {} ciphertexts in {:.2?}",
        db.poly_count(),
        t0.elapsed()
    );

    // Paper query sweep: 8..128 base pairs.
    for bases in [8usize, 16, 32, 64, 128] {
        let (read, pos) = genome.sample_read(bases, 0, &mut rng);
        let read_bits = BitString::from_dna(&read);
        let t = Instant::now();
        let matches = engine.find_all(&enc, &dec, &db, &read_bits, &mut rng);
        let elapsed = t.elapsed();
        let expect_bit = pos * 2;
        assert!(
            matches.contains(&expect_bit),
            "read sampled from position {pos} must be found"
        );
        println!(
            "read of {bases:>3} bp ({:>3} bits): {} occurrence(s), sampled at base {pos}, \
             searched in {elapsed:.2?}",
            read_bits.len(),
            matches.len()
        );
    }

    // Negative control: a corrupted read must not match exactly.
    let (bad_read, _) = genome.sample_read(32, 4, &mut rng);
    let bad_bits = BitString::from_dna(&bad_read);
    let matches = engine.find_all(&enc, &dec, &db, &bad_bits, &mut rng);
    println!(
        "corrupted 32 bp read: {} exact occurrence(s) (expected usually 0)",
        matches.len()
    );
    let stats = engine.stats();
    println!(
        "server work: {} homomorphic additions, {:.2?} total add time — and zero multiplications",
        stats.hom_adds, stats.add_time
    );
}
