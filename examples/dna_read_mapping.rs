//! Case study 1 (paper §5.3): exact DNA string matching.
//!
//! Seeds from a reference genome (2 bits per base) are located in an
//! encrypted genome database — the seeding step of read mapping — using
//! the CM-SW backend behind the unified `SecureMatcher` API. Query sizes
//! follow the paper: 8–128 base pairs (16–256 bits).
//!
//! Run with: `cargo run --release --example dna_read_mapping`

use cm_core::{Backend, BitString, MatcherConfig};
use cm_workloads::DnaGenome;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A small synthetic reference genome (the paper uses 32 GB; the
    // algorithm is identical, the analytical models extrapolate).
    let genome = DnaGenome::random(16_384, &mut rng);
    let genome_bits = BitString::from_dna(&genome.to_string_seq());
    println!(
        "genome: {} bases = {} bits",
        genome.len(),
        genome_bits.len()
    );

    // The paper's parameters (n = 1024, 32-bit q, 16 bits/coefficient).
    let mut matcher = MatcherConfig::new(Backend::Ciphermatch)
        .seed(7)
        .build()
        .expect("valid configuration");
    let t0 = Instant::now();
    matcher
        .load_database(&genome_bits)
        .expect("genome encrypts");
    println!(
        "encrypted once into {} B in {:.2?}",
        matcher.database_bytes().unwrap(),
        t0.elapsed()
    );

    // Paper query sweep: 8..128 base pairs.
    for bases in [8usize, 16, 32, 64, 128] {
        let (read, pos) = genome.sample_read(bases, 0, &mut rng);
        let read_bits = BitString::from_dna(&read);
        let t = Instant::now();
        let matches = matcher.find_all(&read_bits).expect("read searches cleanly");
        let elapsed = t.elapsed();
        let expect_bit = pos * 2;
        assert!(
            matches.contains(&expect_bit),
            "read sampled from position {pos} must be found"
        );
        println!(
            "read of {bases:>3} bp ({:>3} bits): {} occurrence(s), sampled at base {pos}, \
             searched in {elapsed:.2?}",
            read_bits.len(),
            matches.len()
        );
    }

    // Negative control: a corrupted read must not match exactly.
    let (bad_read, _) = genome.sample_read(32, 4, &mut rng);
    let bad_bits = BitString::from_dna(&bad_read);
    let matches = matcher.find_all(&bad_bits).expect("read searches cleanly");
    println!(
        "corrupted 32 bp read: {} exact occurrence(s) (expected usually 0)",
        matches.len()
    );
    let stats = matcher.stats();
    println!(
        "server work: {} homomorphic additions, {:.2?} total add time — and zero \
         multiplications ({} muls, {} rotations, {} bootstraps)",
        stats.hom_adds, stats.add_time, stats.hom_muls, stats.rotations, stats.bootstraps
    );
}
