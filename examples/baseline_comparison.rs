//! Table 1 in action: every implemented approach searches the same data,
//! timed side by side.
//!
//! * CM-SW (Hom-Add only, this paper) — serial and multithreaded;
//! * Yasuda et al. [27] — Hamming distance, 2 Hom-Mul + 3 Hom-Add/block,
//!   including its native *approximate* matching;
//! * Kim/Bonte-style SIMD batched — rotations + squarings over slots;
//! * the Boolean TFHE approach — reported as a projected cost (running
//!   every bootstrap at full parameters takes hours, which is the point).
//!
//! Run with: `cargo run --release --example baseline_comparison`

use cm_bfv::{BfvContext, BfvParams, Decryptor, Encryptor, KeyGenerator};
use cm_core::{BatchedEngine, BitString, BooleanGateCount, CiphermatchEngine, YasudaEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let text = "every implemented approach searches this very string for the needle \
                pattern; the needle appears twice: needle.";
    let data = BitString::from_ascii(text);
    let needle = "needle";
    let needle_bits = BitString::from_ascii(needle);
    let truth = data.find_all(&needle_bits);
    println!(
        "database: {} bits; query {needle:?}; ground truth {truth:?}\n",
        data.len()
    );

    // --- CM-SW -----------------------------------------------------------
    let ctx = BfvContext::new(BfvParams::ciphermatch_1024());
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let (sk, pk) = (kg.secret_key(), kg.public_key(&mut rng));
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk);
    let mut cm = CiphermatchEngine::new(&ctx);
    let db = cm.encrypt_database(&enc, &data, &mut rng);
    let query = cm.prepare_query(&enc, &needle_bits, &mut rng);

    let t = Instant::now();
    let result = cm.search(&db, &query);
    let serial = t.elapsed();
    assert_eq!(cm.generate_indices(&dec, &result), truth);

    let t = Instant::now();
    let result_p = cm.search_parallel(&db, &query, 4);
    let parallel = t.elapsed();
    assert_eq!(cm.generate_indices(&dec, &result_p), truth);
    println!("CM-SW (Hom-Add only) : {serial:>12.2?} serial | {parallel:.2?} with 4 threads");

    // --- Yasuda [27] ------------------------------------------------------
    let ctx_y = BfvContext::new(BfvParams::arithmetic_2048());
    let kg = KeyGenerator::new(&ctx_y, &mut rng);
    let (sk_y, pk_y) = (kg.secret_key(), kg.public_key(&mut rng));
    let enc_y = Encryptor::new(&ctx_y, pk_y);
    let dec_y = Decryptor::new(&ctx_y, sk_y);
    let mut ya = YasudaEngine::new(&ctx_y);
    let db_y = ya.encrypt_database(&enc_y, &data, needle_bits.len(), &mut rng);
    let t = Instant::now();
    let got = ya.find_all(&enc_y, &dec_y, &db_y, &needle_bits, &mut rng);
    let yasuda_t = t.elapsed();
    assert_eq!(got, truth);
    println!(
        "Yasuda [27] (2xMul)  : {yasuda_t:>12.2?} ({:.0}% of it in Hom-Mul)",
        100.0 * ya.stats().mult_fraction()
    );
    // Its unique capability: approximate matching.
    let mut corrupted: Vec<bool> = needle_bits.bits().to_vec();
    corrupted[5] = !corrupted[5];
    let approx = ya.find_within_distance(
        &enc_y,
        &dec_y,
        &db_y,
        &BitString::from_bits(&corrupted),
        1,
        &mut rng,
    );
    println!(
        "  approximate (HD<=1): corrupted needle found at {:?}",
        approx
    );

    // --- Kim/Bonte-style batched -----------------------------------------
    let ctx_b = BfvContext::new(BfvParams::insecure_test_batch());
    let kg = KeyGenerator::new(&ctx_b, &mut rng);
    let (sk_b, pk_b) = (kg.secret_key(), kg.public_key(&mut rng));
    let rk = KeyGenerator::from_secret(&ctx_b, sk_b.clone()).relin_key(&mut rng);
    let two_n = 2 * ctx_b.params().n;
    let elems: Vec<usize> = (1..needle.len())
        .map(|s| {
            let mut g = 1usize;
            for _ in 0..s {
                g = g * 3 % two_n;
            }
            g
        })
        .collect();
    let gk = KeyGenerator::from_secret(&ctx_b, sk_b.clone()).galois_keys(&elems, &mut rng);
    let enc_b = Encryptor::new(&ctx_b, pk_b);
    let dec_b = Decryptor::new(&ctx_b, sk_b);
    let batched = BatchedEngine::new(&ctx_b);
    let symbols: Vec<u64> = text.bytes().map(|b| b as u64).collect();
    let db_b = batched.encrypt_database(&enc_b, &symbols, needle.len(), &mut rng);
    let q_syms: Vec<u64> = needle.bytes().map(|b| b as u64).collect();
    let t = Instant::now();
    let got = batched.find_all(&enc_b, &dec_b, &rk, &gk, &db_b, &q_syms, &mut rng);
    let batched_t = t.elapsed();
    let expect_syms: Vec<usize> = truth.iter().map(|&b| b / 8).collect();
    assert_eq!(got, expect_syms);
    println!(
        "Batched [34,29]-style: {batched_t:>12.2?} (rotations + squarings, byte offsets {got:?})"
    );

    // --- Boolean [17, 33], projected --------------------------------------
    let gates = BooleanGateCount::for_search(data.len(), needle_bits.len());
    println!(
        "Boolean [17] (TFHE)  : {:>9} bootstrapped gates -> ~{:.0} s at 0.4 s/gate (projected)",
        gates.total(),
        gates.total() as f64 * 0.4
    );
}
