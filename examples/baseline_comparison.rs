//! Table 1 in action: every implemented approach searches the same data
//! through the unified `SecureMatcher` API, timed side by side.
//!
//! One loop, five backends — the point of the API redesign: the
//! comparison path contains no per-engine calls, only
//! `MatcherConfig::build` + `ErasedMatcher::find_all`.
//!
//! * CM-SW (Hom-Add only, this paper) — paper parameters, 4 threads;
//! * Yasuda et al. [27] — paper parameters, fixed 48-bit window;
//! * Kim/Bonte-style SIMD batched — bit-granular adapter, rotations +
//!   squarings;
//! * the Boolean TFHE approach — run for real on *fast insecure*
//!   parameters over a slice (every bootstrap at full parameters takes
//!   hours, which is the paper's point — the projected full-parameter
//!   cost is printed alongside);
//! * the unencrypted word-packed reference.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use cm_core::{Backend, BitString, BooleanGateCount, MatcherConfig, YasudaEngine};
use std::time::Instant;

fn main() {
    let text = "every implemented approach searches this very string for the needle \
                pattern; the needle appears twice: needle.";
    let data = BitString::from_ascii(text);
    let needle_bits = BitString::from_ascii("needle");
    let truth = data.find_all(&needle_bits);
    println!(
        "database: {} bits; query \"needle\" ({} bits); ground truth {truth:?}\n",
        data.len(),
        needle_bits.len()
    );

    // The Boolean backend runs every bootstrap for real, so it gets fast
    // (insecure) parameters and a small slice of the database (chosen to
    // still contain one needle occurrence).
    let boolean_data = data.slice(440, 96);
    let boolean_truth = boolean_data.find_all(&needle_bits);

    for backend in Backend::ALL {
        let config = match backend {
            Backend::Boolean => MatcherConfig::new(backend).insecure_test().threads(4),
            _ => MatcherConfig::new(backend)
                .window(needle_bits.len())
                .threads(4)
                .seed(1),
        };
        let mut matcher = config.build().expect("valid configuration");
        let (db_data, expect) = match backend {
            Backend::Boolean => (&boolean_data, &boolean_truth),
            _ => (&data, &truth),
        };
        let t0 = Instant::now();
        matcher.load_database(db_data).expect("database encrypts");
        let t_load = t0.elapsed();
        let t1 = Instant::now();
        let got = matcher
            .find_all(&needle_bits)
            .expect("query fits the window");
        let t_find = t1.elapsed();
        assert_eq!(&got, expect, "{backend} must agree with the ground truth");
        let stats = matcher.stats();
        let note = match backend {
            Backend::Boolean => " (fast insecure params, 96-bit DB slice)",
            _ => "",
        };
        println!(
            "{:<12} encrypt {:>9.2?} ({:>8} B) | search {:>9.2?} | {stats}{note}",
            backend.to_string(),
            t_load,
            matcher.database_bytes().unwrap_or(0),
            t_find,
        );
    }

    // The Boolean cost at *full* parameters, projected from the gate
    // count — running it for real is the latency the paper criticizes.
    let gates = BooleanGateCount::for_search(data.len(), needle_bits.len());
    println!(
        "\nboolean at full parameters: {} bootstrapped gates -> ~{:.0} s at 0.4 s/gate (projected)",
        gates.total(),
        gates.total() as f64 * 0.4
    );

    // Yasuda's unique capability beyond the unified exact-match surface:
    // approximate matching (still engine-level API, not a find_all path).
    let ctx = cm_bfv::BfvContext::new(cm_bfv::BfvParams::arithmetic_2048());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    let kg = cm_bfv::KeyGenerator::new(&ctx, &mut rng);
    let (sk, pk) = (kg.secret_key(), kg.public_key(&mut rng));
    let enc = cm_bfv::Encryptor::new(&ctx, pk);
    let dec = cm_bfv::Decryptor::new(&ctx, sk);
    let mut ya = YasudaEngine::new(&ctx);
    let ydb = ya.encrypt_database(&enc, &data, needle_bits.len(), &mut rng);
    let mut corrupted: Vec<bool> = needle_bits.bits().to_vec();
    corrupted[5] = !corrupted[5];
    let approx = ya.find_within_distance(
        &enc,
        &dec,
        &ydb,
        &BitString::from_bits(&corrupted),
        1,
        &mut rng,
    );
    println!("yasuda approximate (HD<=1): corrupted needle found at {approx:?}");
}
