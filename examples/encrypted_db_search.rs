//! Case study 2 (paper §5.3): encrypted database search.
//!
//! A key-value store is flattened, packed and encrypted; point queries for
//! keys run as secure exact string matching, and the returned bit offsets
//! identify the matching records. Mirrors the paper's 1000-query setup at
//! laptop scale.
//!
//! Run with: `cargo run --release --example encrypted_db_search`

use cm_bfv::{BfvContext, BfvParams};
use cm_core::{BitString, Client, Server};
use cm_workloads::KvDatabase;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let ctx = BfvContext::new(BfvParams::ciphermatch_1024());
    let mut rng = StdRng::seed_from_u64(99);

    // 256 records of 8-byte keys + 24-byte values = 8 KiB of plain data.
    let kv = KvDatabase::random(256, 8, 24, &mut rng);
    let flat = kv.flatten();
    let data = BitString::from_ascii(&flat);
    println!(
        "database: {} records x {} B = {} B plain",
        kv.len(),
        kv.record_bytes(),
        flat.len()
    );

    let client = Client::new(&ctx, &mut rng);
    let mut server = Server::new(&ctx, client.encrypt_database(&data, &mut rng));
    server.install_index_generator(client.delegate_index_generation());

    // Point queries for existing keys (the paper simulates 1000; we run a
    // deterministic handful and verify every answer).
    let queries = kv.sample_queries(16, &mut rng);
    let t0 = Instant::now();
    let mut found = 0usize;
    for key in &queries {
        let q = client.prepare_query(&BitString::from_ascii(key), &mut rng);
        let matches = server.search_indices(&q);
        // The key occupies the first 8 bytes of its record; a hit at a
        // record boundary identifies the record.
        let record_bits = kv.record_bytes() * 8;
        let record_hit = matches
            .iter()
            .find(|&&bit| bit % record_bits == 0)
            .map(|&bit| bit / record_bits);
        let expect = kv.find_record(key).map(|b| b / kv.record_bytes());
        assert_eq!(record_hit, expect, "key {key} must resolve to its record");
        found += 1;
    }
    println!(
        "resolved {found}/{} point queries correctly in {:.2?} ({} Hom-Adds total)",
        queries.len(),
        t0.elapsed(),
        server.hom_adds()
    );

    // A missing key returns no record-aligned match.
    let missing = client.prepare_query(&BitString::from_ascii("NOSUCHKY"), &mut rng);
    let matches = server.search_indices(&missing);
    let record_bits = kv.record_bytes() * 8;
    assert!(matches.iter().all(|&bit| bit % record_bits != 0));
    println!("missing key correctly yields no record-aligned match");
}
