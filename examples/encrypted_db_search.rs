//! Case study 2 (paper §5.3): encrypted database search, served through
//! the multi-query [`MatchSession`] layer.
//!
//! A key-value store is flattened, packed and encrypted; point queries
//! for keys are submitted as one batch, which the session fans out across
//! scoped worker threads and answers with per-query bit offsets plus
//! aggregated statistics. Mirrors the paper's 1000-query setup at laptop
//! scale.
//!
//! Run with: `cargo run --release --example encrypted_db_search`

use cm_core::{Backend, BitString, MatchSession, MatcherConfig};
use cm_workloads::KvDatabase;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // 256 records of 8-byte keys + 24-byte values = 8 KiB of plain data.
    let kv = KvDatabase::random(256, 8, 24, &mut rng);
    let flat = kv.flatten();
    let data = BitString::from_ascii(&flat);
    println!(
        "database: {} records x {} B = {} B plain",
        kv.len(),
        kv.record_bytes(),
        flat.len()
    );

    // The paper's parameters (n = 1024, 32-bit q), four batch workers.
    let config = MatcherConfig::new(Backend::Ciphermatch).seed(99).threads(4);
    let mut session = MatchSession::new(&config).expect("valid configuration");
    session.load_database(&data).expect("database encrypts");
    println!(
        "encrypted once into {} B ({}x the plain size)",
        session.database_bytes().unwrap(),
        session.database_bytes().unwrap() as usize / flat.len()
    );

    // Point queries for existing keys (the paper simulates 1000; we run a
    // deterministic handful and verify every answer), submitted as one
    // batch.
    let keys = kv.sample_queries(16, &mut rng);
    let queries: Vec<BitString> = keys.iter().map(|k| BitString::from_ascii(k)).collect();
    let t0 = Instant::now();
    let report = session.run_batch(&queries).expect("batch runs");
    let elapsed = t0.elapsed();

    let record_bits = kv.record_bytes() * 8;
    for (key, result) in keys.iter().zip(&report.per_query) {
        let matches = result.as_ref().expect("query searches cleanly");
        // The key occupies the first 8 bytes of its record; a hit at a
        // record boundary identifies the record.
        let record_hit = matches
            .iter()
            .find(|&&bit| bit % record_bits == 0)
            .map(|&bit| bit / record_bits);
        let expect = kv.find_record(key).map(|b| b / kv.record_bytes());
        assert_eq!(record_hit, expect, "key {key} must resolve to its record");
    }
    println!(
        "resolved {}/{} point queries correctly in {elapsed:.2?} across 4 workers \
         ({} Hom-Adds, {} encrypted query bytes moved)",
        keys.len(),
        keys.len(),
        report.stats.hom_adds,
        report.stats.bytes_moved
    );

    // A missing key returns no record-aligned match (still through the
    // session, still counted in its aggregate statistics).
    let missing = session
        .find_all(&BitString::from_ascii("NOSUCHKY"))
        .expect("query searches cleanly");
    assert!(missing.iter().all(|&bit| bit % record_bits != 0));
    println!("missing key correctly yields no record-aligned match");
    println!(
        "session totals: {} Hom-Adds and zero multiplications/rotations/bootstraps",
        session.stats().hom_adds
    );
}
