//! Quickstart: the six-step CIPHERMATCH protocol (paper Fig. 6) in
//! software, end to end.
//!
//! Run with: `cargo run --release --example quickstart`

use cm_bfv::{BfvContext, BfvParams};
use cm_core::BitString;
use cm_core::{Client, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The paper's parameters: n = 1024, 32-bit q, 16 bits packed per
    // coefficient.
    let ctx = BfvContext::new(BfvParams::ciphermatch_1024());
    let mut rng = StdRng::seed_from_u64(2025);

    // ① Client: pack + encrypt the database once, upload to the server.
    let client = Client::new(&ctx, &mut rng);
    let data = BitString::from_ascii(
        "CIPHERMATCH packs sixteen bits per coefficient and matches with \
         homomorphic addition only - no multiplications, no rotations.",
    );
    println!(
        "database: {} bits ({} bytes plain)",
        data.len(),
        data.len() / 8
    );
    let db = client.encrypt_database(&data, &mut rng);
    println!(
        "encrypted: {} ciphertexts, {} bytes ({}x the plain size)",
        db.poly_count(),
        db.byte_size(32),
        db.byte_size(32) * 8 / data.len()
    );

    let mut server = Server::new(&ctx, db);
    // The paper's trust model: index generation runs next to the data.
    server.install_index_generator(client.delegate_index_generation());

    // ② Client: prepare the negated, shifted, replicated query variants.
    for needle in [
        "homomorphic addition",
        "multiplications",
        "rotations",
        "absent text",
    ] {
        let query = client
            .prepare_query(&BitString::from_ascii(needle), &mut rng)
            .expect("non-empty query");
        println!(
            "query {needle:?}: {} bits, {} encrypted variants",
            needle.len() * 8,
            query.variant_count()
        );
        // ③–⑤ Server: Hom-Add sweep + match-polynomial index generation.
        let matches = server
            .search_indices(&query)
            .expect("index generator installed above");
        // ⑥ The indices return to the client.
        let byte_offsets: Vec<usize> = matches.iter().map(|&b| b / 8).collect();
        println!("  -> matches at bit offsets {matches:?} (byte offsets {byte_offsets:?})");
    }
    println!(
        "total homomorphic additions executed by the server: {}",
        server.hom_adds()
    );
}
