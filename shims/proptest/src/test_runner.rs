//! Test-runner plumbing used by the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` precondition did not hold; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected-precondition marker.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Deterministic RNG for case number `case`: reruns reproduce the same
/// inputs, so a reported failing case index can be replayed exactly.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0x5052_4F50_5445_5354 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}
