//! The [`Strategy`] trait and the primitive strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest `Strategy`, this one samples directly and does
/// not build a shrinkable value tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
