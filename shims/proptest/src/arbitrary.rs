//! `any::<T>()` — the canonical strategy for a type.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary_sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy for `T` (full range for integers, fair
/// coin for `bool`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary_sample(rng)
    }
}
