//! Collection strategies (`prop::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`](fn@vec).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
