//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * integer-range strategies, [`strategy::Just`], [`arbitrary::any`], and
//!   [`collection::vec`].
//!
//! Cases are generated from a deterministic per-case RNG, so failures are
//! reproducible run-to-run. Unlike the real crate there is **no shrinking**:
//! a failing case reports the case index and the failed assertion only.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of the real crate's `prop` re-export
/// (`prop::collection::vec(...)` etc.).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob-import surface property tests pull in.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
///
/// Each generated test runs `Config::cases` deterministic cases; strategies
/// are sampled (never shrunk) and `prop_assert*` failures abort the test
/// with the case index.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($cfg:expr); ) => {};
    ( config = ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::case_rng(__case);
                $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )*
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case #{} failed: {}", __case, msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("prop_assert!({}) failed at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (at {}:{})", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert_eq!({}, {}) failed at {}:{}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (at {}:{})", format!($($fmt)+), file!(), line!()),
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert_ne!({}, {}) failed at {}:{}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!()
            )));
        }
    }};
}

/// Discards the current case (counted as neither pass nor failure) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!(
                    "prop_assume!({}) at {}:{}",
                    stringify!($cond),
                    file!(),
                    line!()
                ),
            ));
        }
    };
}
