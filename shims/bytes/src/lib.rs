//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Provides `Vec<u8>`-backed [`Bytes`]/[`BytesMut`] plus the [`Buf`] /
//! [`BufMut`] trait methods the workspace's serializers use. Multi-byte
//! integers go on the wire big-endian, matching the real crate's `put_u32` /
//! `get_u32` defaults so a future swap to the real `bytes` keeps the format.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (cheaply cloneable in the real crate; a plain
/// `Vec<u8>` here).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Read side: consume integers and slices from the front of a buffer.
///
/// Implemented for `&[u8]`, advancing the slice as values are read.
pub trait Buf {
    /// Bytes not yet consumed.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out of the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is shorter than `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer exhausted");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write side: append integers and slices to a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u32(0xDEAD_BEEF);
        w.put_u8(7);
        w.put_u16(0x0102);
        w.put_u64(42);
        w.put_slice(&[9, 9]);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.remaining(), 2);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(tail, [9, 9]);
        assert_eq!(r.remaining(), 0);
    }
}
