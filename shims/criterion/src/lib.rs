//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! slice of the criterion 0.5 API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` / `throughput`), [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a simple wall-clock loop: a short warm-up, then batches
//! timed until ~100 ms have elapsed, reporting mean ns/iter (plus MiB/s or
//! Melem/s when a throughput is set). Like the real crate, when a bench
//! binary is run by `cargo test` (i.e. without the `--bench` flag that
//! `cargo bench` passes) each benchmark body executes exactly once as a
//! smoke test instead of being measured.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub use std::hint::black_box;

/// Units for reporting throughput alongside time-per-iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes bench binaries with `--bench`; `cargo test`
        // does not. Mirror criterion: no flag means run-once smoke mode.
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Measures a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.test_mode, &id.into(), None, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and reporting options.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive a rate from the measured time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this harness sizes its own runs.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness sizes its own runs.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measures one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(self.criterion.test_mode, &id, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark body; [`Bencher::iter`] runs the measured code.
pub struct Bencher {
    test_mode: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        const WARMUP: u64 = 3;
        const TARGET: Duration = Duration::from_millis(100);
        const MAX_ITERS: u64 = 1_000_000;
        for _ in 0..WARMUP {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if (iters >= 10 && start.elapsed() >= TARGET) || iters >= MAX_ITERS {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    test_mode: bool,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        test_mode,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("test-mode {id}: ok (1 iteration)");
        return;
    }
    if b.iters == 0 {
        println!("{id}: no iterations recorded");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => {
            format!(" ({:.2} MiB/s)", bytes as f64 / (ns_per_iter * 1.048576e-3))
        }
        Throughput::Elements(n) => {
            format!(" ({:.2} Melem/s)", n as f64 / (ns_per_iter * 1e-3))
        }
    });
    println!("{id}: {ns_per_iter:.1} ns/iter{}", rate.unwrap_or_default());
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
