//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API surface its code actually
//! uses: [`rngs::StdRng`] (a deterministic xoshiro256++ generator seeded via
//! SplitMix64), [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The streams are *not* bit-compatible with the real `rand` crate; nothing
//! in this repository depends on a particular stream, only on determinism
//! for a fixed seed.

#![warn(missing_docs)]

pub mod rngs;

/// Core source of randomness: a 64-bit generator plus byte filling.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from the "standard" distribution of a type
/// (full integer range, `[0, 1)` for floats, fair coin for `bool`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// A `u64` mapped to `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform sampling of a value of type `T` from a range expression.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` by rejection sampling: draws above the
/// largest multiple of `span` that fits in 2^64 are retried, so no residue
/// is over-represented (a plain `next_u64() % span` would bias low residues,
/// which matters for the crypto samplers built on `gen_range`).
fn uniform_below<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
    debug_assert!(span > 0);
    let zone = ((1u128 << 64) / span) * span;
    loop {
        let draw = rng.next_u64() as u128;
        if draw < zone {
            return draw % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = uniform_below(span, rng);
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = uniform_below(span, rng);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// Convenience extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let s = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&s));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
