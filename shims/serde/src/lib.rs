//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so `#[derive(Serialize,
//! Deserialize)]` annotations across the workspace are satisfied by these
//! no-op derive macros. No serialization format is wired up yet; when a real
//! wire format is needed, swap this shim for the actual `serde` crate — the
//! annotated types already carry the derives.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts the annotated item, emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts the annotated item, emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
